package twsim_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	twsim "repro"
)

func randomWalks(seed int64, count, minLen, maxLen int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, count)
	for i := range out {
		n := minLen + rng.Intn(maxLen-minLen+1)
		s := make([]float64, n)
		s[0] = 1 + 9*rng.Float64()
		for j := 1; j < n; j++ {
			s[j] = s[j-1] + rng.Float64()*0.2 - 0.1
		}
		out[i] = s
	}
	return out
}

func TestOpenMemAddSearch(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// The paper's §1 example pair: identical under warping.
	s := []float64{20, 21, 21, 20, 20, 23, 23, 23}
	q := []float64{20, 20, 21, 20, 23}
	id, err := db.Add(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Search(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].ID != id || res.Matches[0].Dist != 0 {
		t.Fatalf("Search = %+v", res.Matches)
	}
}

func TestSearchMatchesNaiveScan(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	data := randomWalks(1, 150, 10, 40)
	if _, err := db.AddAll(data); err != nil {
		t.Fatal(err)
	}
	naive := db.BaselineNaiveScan()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		q := data[rng.Intn(len(data))]
		eps := rng.Float64()
		want, err := naive.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		got, err := db.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Matches) != len(want.Matches) {
			t.Fatalf("trial %d: %d matches, naive %d", trial, len(got.Matches), len(want.Matches))
		}
		for i := range got.Matches {
			if got.Matches[i].ID != want.Matches[i].ID {
				t.Fatalf("trial %d: id mismatch at %d", trial, i)
			}
		}
	}
}

func TestAllBaselinesAgree(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	data := randomWalks(3, 80, 8, 25)
	if _, err := db.AddAll(data); err != nil {
		t.Fatal(err)
	}
	stf, err := db.BaselineSTFilter(25)
	if err != nil {
		t.Fatal(err)
	}
	searchers := []twsim.Searcher{
		db.BaselineNaiveScan(),
		db.BaselineLBScan(),
		stf,
		db.TWSimSearcher(),
	}
	q := data[7]
	const eps = 0.3
	var want []twsim.ID
	for i, s := range searchers {
		res, err := s.Search(q, eps)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		ids := res.IDs()
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		if i == 0 {
			want = ids
			if len(want) == 0 {
				t.Fatal("query matched nothing; test needs a self-match")
			}
			continue
		}
		if len(ids) != len(want) {
			t.Fatalf("%s: %d matches, want %d", s.Name(), len(ids), len(want))
		}
		for j := range ids {
			if ids[j] != want[j] {
				t.Fatalf("%s: mismatch at %d", s.Name(), j)
			}
		}
	}
}

func TestFastMapBaselineIsSubset(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	data := randomWalks(4, 60, 8, 20)
	if _, err := db.AddAll(data); err != nil {
		t.Fatal(err)
	}
	fm, err := db.BaselineFastMap(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := db.Search(data[5], 0.4)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := fm.Search(data[5], 0.4)
	if err != nil {
		t.Fatal(err)
	}
	truthSet := map[twsim.ID]bool{}
	for _, m := range truth.Matches {
		truthSet[m.ID] = true
	}
	for _, m := range approx.Matches {
		if !truthSet[m.ID] {
			t.Errorf("FastMap returned non-answer %d", m.ID)
		}
	}
}

func TestNearestK(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	data := randomWalks(5, 100, 10, 30)
	if _, err := db.AddAll(data); err != nil {
		t.Fatal(err)
	}
	q := data[11]
	got, err := db.NearestK(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("NearestK returned %d", len(got))
	}
	// Brute force.
	dists := make([]float64, len(data))
	for i, s := range data {
		dists[i] = twsim.Distance(s, q, twsim.BaseLInf)
	}
	sort.Float64s(dists)
	for i := range got {
		if math.Abs(got[i].Dist-dists[i]) > 1e-12 {
			t.Fatalf("pos %d: %g, want %g", i, got[i].Dist, dists[i])
		}
	}
	if got[0].ID != 11 || got[0].Dist != 0 {
		t.Errorf("nearest is not the query's source: %+v", got[0])
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := twsim.Create(dir, twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := randomWalks(6, 50, 10, 25)
	if _, err := db.AddAll(data); err != nil {
		t.Fatal(err)
	}
	truth, err := db.Search(data[3], 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := twsim.Open(dir, twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 50 {
		t.Fatalf("reopened Len = %d", db2.Len())
	}
	if err := db2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res, err := db2.Search(data[3], 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != len(truth.Matches) {
		t.Fatalf("after reopen: %d matches, want %d", len(res.Matches), len(truth.Matches))
	}
	got, err := db2.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != data[3][i] {
			t.Fatal("Get after reopen corrupted")
		}
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := twsim.Open(t.TempDir(), twsim.Options{}); err == nil {
		t.Error("Open of empty directory succeeded")
	}
}

func TestInputValidation(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Add(nil); err == nil {
		t.Error("Add(nil) accepted")
	}
	if _, err := db.AddAll(nil); err == nil {
		t.Error("AddAll(nil) accepted")
	}
	if _, err := db.Search(nil, 1); err == nil {
		t.Error("Search with empty query accepted")
	}
	if _, err := db.Search([]float64{1}, -1); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := db.NearestK(nil, 3); err == nil {
		t.Error("NearestK with empty query accepted")
	}
	if _, err := db.Get(99); err == nil {
		t.Error("Get of unknown id accepted")
	}
}

func TestDistanceHelpers(t *testing.T) {
	s := []float64{20, 21, 21, 20, 20, 23, 23, 23}
	q := []float64{20, 20, 21, 20, 23}
	if d := twsim.Distance(s, q, twsim.BaseLInf); d != 0 {
		t.Errorf("Distance = %g", d)
	}
	if d, ok := twsim.DistanceWithin(s, q, twsim.BaseLInf, 0.5); !ok || d != 0 {
		t.Errorf("DistanceWithin = %g, %v", d, ok)
	}
	if lb := twsim.LowerBound(s, q); lb > 0 {
		t.Errorf("LowerBound = %g", lb)
	}
	if lb := twsim.LowerBoundYi(s, q, twsim.BaseLInf); lb > 0 {
		t.Errorf("LowerBoundYi = %g", lb)
	}
	d, path := twsim.WarpingPath(s, q, twsim.BaseLInf)
	if d != 0 || len(path) == 0 {
		t.Errorf("WarpingPath = %g, %d steps", d, len(path))
	}
	if bd := twsim.BandDistance(s, q, twsim.BaseLInf, 1000); bd != 0 {
		t.Errorf("BandDistance = %g", bd)
	}
	first, last, greatest, smallest, err := twsim.Feature(s)
	if err != nil || first != 20 || last != 23 || greatest != 23 || smallest != 20 {
		t.Errorf("Feature = %g %g %g %g, %v", first, last, greatest, smallest, err)
	}
	if _, _, _, _, err := twsim.Feature(nil); err == nil {
		t.Error("Feature(nil) accepted")
	}
}

func TestDBDistanceAndAccessors(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{Base: twsim.BaseL1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Base() != twsim.BaseL1 {
		t.Errorf("Base = %v", db.Base())
	}
	id, err := db.Add([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	d, err := db.Distance(id, []float64{1, 2, 4})
	if err != nil || d != 1 {
		t.Errorf("Distance = %g, %v", d, err)
	}
	if db.DataBytes() == 0 {
		t.Error("DataBytes = 0")
	}
	if db.IndexPages() == 0 {
		t.Error("IndexPages = 0")
	}
}

func TestAddAfterBulk(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.AddAll(randomWalks(7, 30, 5, 15)); err != nil {
		t.Fatal(err)
	}
	// AddAll on a non-empty database takes the incremental path.
	if _, err := db.AddAll([][]float64{{5, 5, 5}, {6, 6}}); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 32 {
		t.Errorf("Len = %d", db.Len())
	}
	res, err := db.Search([]float64{5, 5}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range res.Matches {
		if m.ID == 30 {
			found = true
		}
	}
	if !found {
		t.Error("incrementally added sequence not searchable")
	}
}
