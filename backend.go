package twsim

import (
	"context"

	"repro/internal/core"
	"repro/internal/seq"
)

// Backend is the operation surface shared by the single-database engine
// (*DB) and the sharded engine (*ShardedDB). Servers and tools written
// against Backend run unchanged on either — and it is the seam a future
// multi-node engine will slot into.
//
// Concurrency: *ShardedDB is safe for fully concurrent use (writers are
// serialized per shard internally). *DB follows the library rule — safe
// for concurrent readers, writers need external serialization — so callers
// mixing writers must wrap it (internal/server does).
type Backend interface {
	// Add stores one sequence and returns its ID.
	Add(values []float64) (ID, error)
	// AddBatch stores a batch and returns every assigned ID in input
	// order. Unlike DB.AddAll, the IDs are not promised to be consecutive:
	// a sharded backend interleaves them across shards.
	AddBatch(values [][]float64) ([]ID, error)
	// Remove deletes a sequence, reporting whether it was present.
	Remove(id ID) (bool, error)
	// Get fetches a stored sequence.
	Get(id ID) ([]float64, error)
	// Search runs the paper's range similarity query under the backend's
	// default band (Options.Band; 0 = the paper's unconstrained distance).
	Search(query []float64, epsilon float64) (*Result, error)
	// SearchBand is Search under an explicit Sakoe–Chiba band half-width
	// for this call (0 = unconstrained, ≥ 1 = banded, negative = error).
	SearchBand(query []float64, epsilon float64, band int) (*Result, error)
	// NearestK runs the exact k-NN extension under the default band.
	NearestK(query []float64, k int) ([]Match, error)
	// NearestKBand is NearestK under an explicit band half-width.
	NearestKBand(query []float64, k, band int) ([]Match, error)
	// NearestKStats is NearestK returning the full Result — matches plus
	// work counters and the request ID — so serving layers can export k-NN
	// traffic into the same metrics as range searches.
	NearestKStats(query []float64, k int) (*Result, error)
	// NearestKStatsBand is NearestKStats under an explicit band half-width.
	NearestKStatsBand(query []float64, k, band int) (*Result, error)
	// SearchBatch runs many range queries concurrently under the default
	// band.
	SearchBatch(queries [][]float64, epsilon float64, parallelism int) ([]*Result, error)
	// SearchBatchBand is SearchBatch under an explicit band half-width.
	SearchBatchBand(queries [][]float64, epsilon float64, band, parallelism int) ([]*Result, error)
	// SearchCtx is SearchBand governed by a context: a done context (client
	// disconnect, deadline) abandons the query at its next candidate
	// boundary and returns the context's error; Options.QueryDeadline, when
	// set, caps execution time on top. A nil context never cancels. A
	// completed query is bit-identical to SearchBand.
	SearchCtx(ctx context.Context, query []float64, epsilon float64, band int) (*Result, error)
	// NearestKCtx is NearestKStatsBand governed by a context (see SearchCtx).
	NearestKCtx(ctx context.Context, query []float64, k, band int) (*Result, error)
	// SearchBatchCtx is SearchBatchBand governed by a context: a done
	// context stops dispatching and abandons in-flight queries, failing the
	// whole batch with the context's error.
	SearchBatchCtx(ctx context.Context, queries [][]float64, epsilon float64, band, parallelism int) ([]*Result, error)
	// DefaultBand returns the band half-width queries run under when no
	// per-call override is given (Options.Band) — serving layers use it to
	// resolve requests that omit the band.
	DefaultBand() int
	// ResultCacheStats snapshots the whole-query result cache counters
	// (all zero when the cache is disabled).
	ResultCacheStats() core.ResultCacheStats
	// BuildSubseqIndex indexes sliding windows of the current contents for
	// subsequence matching (per shard, fanned out, for a sharded backend).
	BuildSubseqIndex(windowLens []int, step int) (*SubseqIndex, error)
	// Len returns the number of live sequences.
	Len() int
	// DataBytes returns the logical size of the stored data.
	DataBytes() int64
	// IndexPages returns the feature index size in pages.
	IndexPages() int
	// LastRepair reports what the Open-time reconciliation fixed.
	LastRepair() RepairStats
	// StorageStats snapshots the buffer pool and decoded-sequence cache
	// counters (summed over shards for a sharded backend).
	StorageStats() StorageStats
	// IndexEngineStats reports which feature-index engine backs the store
	// and, for the flat engine, its snapshot/delta counters (summed over
	// shards for a sharded backend).
	IndexEngineStats() core.IndexEngineStats
	// OpenDiagnostics returns the human-readable notes recorded while
	// opening the database (rebuild-on-open, reconciliation, sidecar
	// rebuilds). Empty for a clean open.
	OpenDiagnostics() []string
	// WALStats snapshots the write-ahead-log counters (summed over shards
	// for a sharded backend; all zero when the WAL is disabled).
	WALStats() WALStats
	// Verify runs the full heap/index integrity check.
	Verify() error
	// Flush persists all state.
	Flush() error
	// Close flushes and releases the database.
	Close() error
}

var (
	_ Backend = (*DB)(nil)
	_ Backend = (*ShardedDB)(nil)
)

// AddBatch stores a batch of sequences and returns the assigned IDs in
// input order — the Backend form of AddAll (which see for atomicity). For
// a single database the IDs are consecutive.
func (db *DB) AddBatch(values [][]float64) ([]ID, error) {
	first, err := db.AddAll(values)
	if err != nil {
		return nil, err
	}
	ids := make([]ID, len(values))
	for i := range ids {
		ids[i] = first + ID(i)
	}
	return ids, nil
}

// SharedBound is a cross-partition pruning bound for concurrent k-NN
// searches over disjoint partitions of one logical database; see
// DB.NearestKShared. The sharded engine wires one through every fan-out
// automatically — constructing one by hand is only needed when composing
// partitions manually.
type SharedBound = core.SharedBound

// NewSharedBound returns a SharedBound initialized to +Inf.
func NewSharedBound() *SharedBound { return core.NewSharedBound() }

// NearestKShared is NearestK with an optional shared pruning bound: when
// several databases partition one logical data set, concurrent per-
// partition searches publishing into one SharedBound prune each other, and
// the merged, re-sorted, truncated-to-k union of their results equals the
// unpartitioned answer. A nil bound makes it identical to NearestK. The
// returned matches are the walk's survivors (at most k, ascending); under
// a shared bound they need not be this partition's own true top-k.
func (db *DB) NearestKShared(query []float64, k int, bound *SharedBound) ([]Match, error) {
	return db.NearestKSharedWorkers(query, k, bound, db.opts.refineWorkers())
}

// NearestKSharedWorkers is NearestKShared with an explicit intra-query
// verification worker count for this call (≤ 1 means serial), overriding
// Options.RefineWorkers. The sharded engine uses it to spread one refine
// budget across shards; results are bit-identical at every worker count.
func (db *DB) NearestKSharedWorkers(query []float64, k int, bound *SharedBound, workers int) ([]Match, error) {
	ms, _, err := db.NearestKStatsWorkers(query, k, bound, workers)
	return ms, err
}

// NearestKStatsWorkers is NearestKSharedWorkers with the query's work
// counters returned alongside the matches, under the database's default
// band (Options.Band).
func (db *DB) NearestKStatsWorkers(query []float64, k int, bound *SharedBound, workers int) ([]Match, QueryStats, error) {
	return db.NearestKStatsBandWorkers(query, k, db.opts.Band, bound, workers)
}

// NearestKStatsBandWorkers is NearestKStatsBandWorkersCtx with no context.
func (db *DB) NearestKStatsBandWorkers(query []float64, k, band int, bound *SharedBound, workers int) ([]Match, QueryStats, error) {
	return db.NearestKStatsBandWorkersCtx(nil, query, k, band, bound, workers)
}

// NearestKStatsBandWorkersCtx is the most general k-NN entry point:
// explicit context (nil never cancels; a done context abandons the walk at
// its next candidate boundary), Sakoe–Chiba band half-width
// (0 = unconstrained), optional cross-partition shared bound, and explicit
// worker count. It is the form the sharded engine calls per shard, so k-NN
// work shows up in per-shard counters and the exported conservation law
// (Candidates = ΣPruned + DTWCalls) covers k-NN traffic too.
func (db *DB) NearestKStatsBandWorkersCtx(ctx context.Context, query []float64, k, band int, bound *SharedBound, workers int) ([]Match, QueryStats, error) {
	if len(query) == 0 {
		return nil, QueryStats{}, seq.ErrEmpty
	}
	if err := seq.CheckFinite(query); err != nil {
		return nil, QueryStats{}, err
	}
	if err := validateBand(band); err != nil {
		return nil, QueryStats{}, err
	}
	return db.searcher(ctx, workers, band).NearestKSharedStats(seq.Sequence(query), k, bound)
}

// SearchBandWorkersCtx on *DB lives in twsim.go; together with
// NearestKStatsBandWorkersCtx it satisfies the sharded engine's
// shard.Store interface.
