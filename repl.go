package twsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/seq"
	"repro/internal/wal"
)

// Replication model: a WAL-enabled on-disk primary ships (1) a full-state
// snapshot — every heap record slot in ID order, tombstones included, so
// the replica's dense ID space is identical to the primary's — stamped
// with the WAL sequence number it reflects, and (2) the WAL tail beyond
// any sequence number, served as raw record bytes. A replica bootstraps
// from the snapshot, then applies the streamed tail through its own
// normal write path; because log order equals apply order and IDs are
// dense and never reused, the replica's state at applied sequence S is
// byte-for-byte the primary's state at S, and queries answer
// bit-identically. A tail request from before the primary's last
// checkpoint returns wal.ErrCompacted, and the replica re-syncs from a
// fresh snapshot — an incremental diff, since existing IDs never change
// retroactively (a slot only ever flips live → tombstoned).

// ErrNoWAL is returned by the replication entry points on a database
// without a write-ahead log: without the log there is no sequence-number
// cursor to stream a tail against.
var ErrNoWAL = errors.New("twsim: replication requires a WAL-enabled on-disk database")

// ErrWALCompacted re-exports wal.ErrCompacted for replication callers: a
// tail cursor from before the primary's last checkpoint cannot be served
// and the replica must re-sync from a snapshot.
var ErrWALCompacted = wal.ErrCompacted

// ErrReplicaDiverged means a record stream does not line up with the
// replica's dense ID space — the replica must re-bootstrap from a
// snapshot.
var ErrReplicaDiverged = errors.New("twsim: replica diverged from primary record stream")

const (
	snapMagic   = 0x53525754 // "TWRS"
	snapVersion = 1
)

// ReplRecord is one heap slot in a shipped snapshot.
type ReplRecord struct {
	Deleted bool
	Values  []float64
}

// ReplSnapshot is a primary's full state at WAL sequence number Seq:
// every record slot in ID order, tombstones included.
type ReplSnapshot struct {
	Seq     uint64
	Records []ReplRecord
}

// ReplSeq returns the WAL sequence number covering every applied write —
// the cursor a snapshot is stamped with and replicas poll from. The
// caller must exclude writers (hold its writer lock) for the value to be
// a consistent cut.
func (db *DB) ReplSeq() (uint64, error) {
	if db.wal == nil {
		return 0, ErrNoWAL
	}
	return db.wal.LastSeq(), nil
}

// WALTail returns the serialized durable log records after sequence
// number from, capped near maxBytes on a record boundary, plus the
// sequence number of the last record included (== from when the replica
// is caught up). wal.ErrCompacted means from predates the last
// checkpoint and the caller must re-sync from a snapshot.
func (db *DB) WALTail(from uint64, maxBytes int) (data []byte, last uint64, err error) {
	if db.wal == nil {
		return nil, 0, ErrNoWAL
	}
	return db.wal.TailSince(from, maxBytes)
}

// WALTailBase returns the oldest sequence number still present in the
// log (tails from before it are compacted away).
func (db *DB) WALTailBase() (uint64, error) {
	if db.wal == nil {
		return 0, ErrNoWAL
	}
	return db.wal.Base(), nil
}

// WriteReplSnapshot streams the database's full state to w in the
// snapshot wire format and returns the WAL sequence number it reflects.
// The caller must exclude writers for the duration (the HTTP layer holds
// its writer-excluding read lock). Tombstoned slots whose bytes no
// longer decode are shipped as a one-element placeholder — they are
// unreadable on the primary too, so replica queries cannot observe the
// difference.
//
// Wire format, little-endian, CRC-32 (IEEE) of everything before the
// trailer: u32 magic "TWRS" | u32 version | u64 seq | u64 count |
// count × (u8 deleted | u32 len | len × f64) | u32 crc.
func (db *DB) WriteReplSnapshot(w io.Writer) (seqno uint64, err error) {
	seqno, err = db.ReplSeq()
	if err != nil {
		return 0, err
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	var scratch [16]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := mw.Write(scratch[:4])
		return err
	}
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := mw.Write(scratch[:8])
		return err
	}
	if err := writeU32(snapMagic); err != nil {
		return 0, err
	}
	if err := writeU32(snapVersion); err != nil {
		return 0, err
	}
	if err := writeU64(seqno); err != nil {
		return 0, err
	}
	if err := writeU64(uint64(db.store.NumRecords())); err != nil {
		return 0, err
	}
	err = db.store.ScanAll(func(id seq.ID, s seq.Sequence, deleted bool) error {
		if s == nil {
			s = seq.Sequence{0} // undecodable tombstone placeholder
		}
		flag := byte(0)
		if deleted {
			flag = 1
		}
		if _, err := mw.Write([]byte{flag}); err != nil {
			return err
		}
		if err := writeU32(uint32(len(s))); err != nil {
			return err
		}
		for _, v := range s {
			if err := writeU64(math.Float64bits(v)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	sum := crc.Sum32()
	binary.LittleEndian.PutUint32(scratch[:4], sum)
	if _, err := w.Write(scratch[:4]); err != nil {
		return 0, err
	}
	return seqno, nil
}

// ReadReplSnapshot parses a snapshot produced by WriteReplSnapshot,
// verifying magic, version, framing, and checksum.
func ReadReplSnapshot(r io.Reader) (*ReplSnapshot, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeReplSnapshot(raw)
}

// DecodeReplSnapshot parses snapshot bytes (see WriteReplSnapshot for
// the format).
func DecodeReplSnapshot(raw []byte) (*ReplSnapshot, error) {
	if len(raw) < 24+4 {
		return nil, fmt.Errorf("twsim: snapshot too short (%d bytes)", len(raw))
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("twsim: snapshot checksum mismatch (got %08x want %08x)", got, want)
	}
	if binary.LittleEndian.Uint32(body[0:]) != snapMagic {
		return nil, errors.New("twsim: snapshot bad magic")
	}
	if v := binary.LittleEndian.Uint32(body[4:]); v != snapVersion {
		return nil, fmt.Errorf("twsim: unsupported snapshot version %d", v)
	}
	snap := &ReplSnapshot{Seq: binary.LittleEndian.Uint64(body[8:])}
	count := binary.LittleEndian.Uint64(body[16:])
	off := 24
	for i := uint64(0); i < count; i++ {
		if len(body) < off+5 {
			return nil, fmt.Errorf("twsim: snapshot truncated at record %d", i)
		}
		deleted := body[off] == 1
		n := int(binary.LittleEndian.Uint32(body[off+1:]))
		off += 5
		if n <= 0 || len(body) < off+8*n {
			return nil, fmt.Errorf("twsim: snapshot record %d bad length %d", i, n)
		}
		vals := make([]float64, n)
		for k := 0; k < n; k++ {
			vals[k] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
			off += 8
		}
		snap.Records = append(snap.Records, ReplRecord{Deleted: deleted, Values: vals})
	}
	if off != len(body) {
		return nil, fmt.Errorf("twsim: %d trailing snapshot bytes", len(body)-off)
	}
	return snap, nil
}

// SyncFromReplSnapshot brings a replica backend up to the snapshot's
// state. have is the replica's current NumRecords(). Because a replica's
// record stream is always a prefix of the primary's, syncing is purely
// incremental: slots the replica does not have yet are added (and
// tombstoned where the snapshot says so), and existing slots that the
// snapshot marks deleted are removed. It returns the mutation counts.
func SyncFromReplSnapshot(b Backend, have int, snap *ReplSnapshot) (added, removed int, err error) {
	if have > len(snap.Records) {
		return 0, 0, fmt.Errorf("%w: replica has %d records, snapshot only %d", ErrReplicaDiverged, have, len(snap.Records))
	}
	for id := have; id < len(snap.Records); id++ {
		rec := snap.Records[id]
		got, err := b.Add(rec.Values)
		if err != nil {
			return added, removed, fmt.Errorf("twsim: snapshot sync add %d: %w", id, err)
		}
		if got != ID(id) {
			return added, removed, fmt.Errorf("%w: snapshot add landed at %d, want %d", ErrReplicaDiverged, got, id)
		}
		added++
		if rec.Deleted {
			if _, err := b.Remove(ID(id)); err != nil {
				return added, removed, fmt.Errorf("twsim: snapshot sync remove %d: %w", id, err)
			}
			removed++
		}
	}
	for id := 0; id < have; id++ {
		if !snap.Records[id].Deleted {
			continue
		}
		ok, err := b.Remove(ID(id))
		if err != nil {
			return added, removed, fmt.Errorf("twsim: snapshot sync remove %d: %w", id, err)
		}
		if ok {
			removed++
		}
	}
	return added, removed, nil
}

// ApplyWALRecords applies a streamed primary record tail to a replica
// backend through its normal write path. numRecords reports the
// replica's current dense record count (re-read per record, after each
// apply). Records whose effects are already present are skipped; a
// record that neither matches the next slot nor a past one is
// ErrReplicaDiverged — re-sync from a snapshot. It returns the number of
// mutations applied and the last record sequence number processed.
func ApplyWALRecords(b Backend, numRecords func() int, recs []wal.Record) (applied int, last uint64, err error) {
	for _, r := range recs {
		last = r.Seq
		switch r.Type {
		case wal.TypeAdd, wal.TypeAddBatch:
			id := r.ID
			for _, s := range r.Data {
				next := ID(numRecords())
				switch {
				case id < next:
					// Already present (applied via the snapshot or an
					// earlier poll).
				case id == next:
					got, aerr := b.Add([]float64(s))
					if aerr != nil {
						return applied, last, fmt.Errorf("twsim: replica add %d: %w", id, aerr)
					}
					if got != id {
						return applied, last, fmt.Errorf("%w: add landed at %d, want %d", ErrReplicaDiverged, got, id)
					}
					applied++
				default:
					return applied, last, fmt.Errorf("%w: next slot %d, record claims %d", ErrReplicaDiverged, next, id)
				}
				id++
			}
		case wal.TypeRemove:
			if int(r.ID) >= numRecords() {
				return applied, last, fmt.Errorf("%w: remove of unknown record %d", ErrReplicaDiverged, r.ID)
			}
			ok, rerr := b.Remove(r.ID)
			if rerr != nil {
				return applied, last, fmt.Errorf("twsim: replica remove %d: %w", r.ID, rerr)
			}
			if ok {
				applied++
			}
		default:
			return applied, last, fmt.Errorf("%w: unknown record type %d", ErrReplicaDiverged, r.Type)
		}
	}
	return applied, last, nil
}

// ParseWALRecords decodes the raw bytes WALTail serves into records,
// validating per-record CRCs and the dense sequence numbering starting
// at firstSeq (the cursor + 1).
func ParseWALRecords(data []byte, firstSeq uint64) ([]wal.Record, error) {
	recs, n, err := wal.ScanRecords(data, firstSeq)
	if err != nil {
		return nil, fmt.Errorf("twsim: wal tail corrupt at byte %d: %w", n, err)
	}
	return recs, nil
}
