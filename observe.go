package twsim

import (
	"log"
	"sync/atomic"
)

// requestIDs is the process-wide query ID source. IDs are unique across
// every database in the process (single and sharded), so a slow-query log
// line can be joined unambiguously with the response carrying the same ID.
var requestIDs atomic.Uint64

// nextRequestID returns the next process-unique query identifier (never 0).
func nextRequestID() uint64 { return requestIDs.Add(1) }

// slowLogger resolves the destination of slow-query lines.
func (o Options) slowLogger() *log.Logger {
	if o.SlowQueryLogger != nil {
		return o.SlowQueryLogger
	}
	return log.Default()
}

// logSlowQuery emits one line when a query's wall time reached
// Options.SlowQueryThreshold (0 disables logging). The line is a flat
// key=value record — stable keys, one query per line — so it greps and
// parses without a log pipeline:
//
//	twsim: slow query kind=search request_id=17 qlen=128 epsilon=0.25 band=0
//	  wall=120ms filter=8ms refine=112ms candidates=940 results=3 dtw=41
//	  pruned_kim=800 pruned_paa=0 pruned_keogh=70 pruned_yi=20
//	  pruned_improved=0 pruned_corridor=9
//
// kind is "search", "knn", or "batch"; param carries the query-kind
// specific parameters ("epsilon=… band=…" or "k=… band=…"); request_id
// matches the Result.RequestID returned to the caller.
func (o Options) logSlowQuery(kind string, requestID uint64, queryLen int, param string, stats QueryStats) {
	if o.SlowQueryThreshold <= 0 || stats.Wall < o.SlowQueryThreshold {
		return
	}
	o.slowLogger().Printf("twsim: slow query kind=%s request_id=%d qlen=%d %s wall=%s filter=%s refine=%s candidates=%d results=%d dtw=%d pruned_kim=%d pruned_paa=%d pruned_keogh=%d pruned_yi=%d pruned_improved=%d pruned_corridor=%d",
		kind, requestID, queryLen, param, stats.Wall, stats.FilterWall, stats.RefineWall,
		stats.Candidates, stats.Results, stats.DTWCalls,
		stats.LBKimPruned, stats.LBPAAPruned, stats.LBKeoghPruned, stats.LBYiPruned,
		stats.LBImprovedPruned, stats.CorridorPruned)
}
