package twsim

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rtree"
	"repro/internal/seq"
	"repro/internal/seqdb"
	"repro/internal/wal"
)

// Base selects the per-element base distance inside the time warping
// distance (the paper's Dbase, §4.1).
type Base = seq.Base

// Base distance choices. The paper's similarity model uses BaseLInf; BaseL1
// is the classic additive DTW; BaseL2Sq accumulates squared differences.
const (
	BaseLInf = seq.LInf
	BaseL1   = seq.L1
	BaseL2Sq = seq.L2Sq
)

// ID identifies a stored sequence.
type ID = seq.ID

// ErrNonFinite is returned by every write and query entry point when a
// sequence or query contains a NaN or ±Inf element. Non-finite values are
// rejected at the boundary because they silently break the paper's
// no-false-dismissal guarantee: a NaN feature component makes the R-tree
// entry invisible to every range query (NaN comparisons are all false)
// while a sequential scan can still match the sequence — an index/scan
// divergence with no error anywhere. Test with errors.Is.
var ErrNonFinite = seq.ErrNonFinite

// Match is one search result: a sequence ID and its exact time warping
// distance to the query.
type Match = core.Match

// Result carries the matches of one query plus its work statistics.
type Result = core.Result

// QueryStats describes the work one query performed (candidates, exact DTW
// evaluations, page I/O, wall time).
type QueryStats = core.QueryStats

// StorageStats snapshots the storage-layer counters: the data heap's and
// feature index's buffer pools plus the decoded-sequence cache. Snapshots
// are wait-free and weakly consistent (see the core type's godoc).
type StorageStats = core.StorageStats

// CostModel converts buffer pool misses into modeled disk time.
type CostModel = core.CostModel

// SplitStrategy selects the R-tree overflow heuristic.
type SplitStrategy = rtree.SplitStrategy

// R-tree split strategies.
const (
	SplitQuadratic = rtree.QuadraticSplit
	SplitLinear    = rtree.LinearSplit
)

// Index engine names for Options.IndexEngine.
const (
	// EngineGuttman is the classic paged Guttman R-tree (the default).
	EngineGuttman = core.EngineGuttman
	// EngineFlat is the flat snapshot + delta engine: an immutable packed
	// tree walked lock- and allocation-free, a small mutable delta absorbing
	// writes, and a background merge that atomically swaps snapshots. It
	// also packs each sequence's PAA envelope next to its leaf entry, making
	// the index walk itself envelope-tight. Query results are bit-identical
	// to the guttman engine.
	EngineFlat = core.EngineFlat
)

// Options configures a DB.
type Options struct {
	// Base is the per-element distance inside DTW. The zero value is
	// BaseLInf, the paper's model.
	Base Base
	// IndexEngine selects the feature-index engine: EngineGuttman or
	// EngineFlat. Empty means: the engine an existing database was created
	// with (detected from which index file is present), guttman for new
	// databases. Results are bit-identical across engines; only the read
	// path's machinery differs.
	IndexEngine string
	// FlatMergeThreshold is the flat engine's delta size (adds + tombstones)
	// that schedules a background snapshot merge. 0 means the engine
	// default; negative disables automatic merging (Flush/Close still merge
	// synchronously). Ignored by the guttman engine.
	FlatMergeThreshold int
	// PageSize is the page size of both the data heap file and the index
	// (0 = 1 KB, the paper's setting).
	PageSize int
	// PoolPages is the buffer pool capacity of each file in pages (0 = 64).
	PoolPages int
	// Split is the R-tree split heuristic (default quadratic).
	Split SplitStrategy
	// DisableCascade turns off the tiered lower-bound cascade in the
	// refinement step, sending every index candidate straight to the exact
	// early-abandoning DTW. Matches and distances are bit-identical either
	// way — the cascade only skips work, never answers — so the flag exists
	// for benchmarking and verification, not correctness.
	DisableCascade bool
	// DisableEnvOrdering turns off the k-NN walk's envelope-sharpened
	// frontier ordering (candidates re-keyed by max(mindist, LB_PAA) before
	// surfacing), keeping the plain mindist stream. Matches and distances
	// are bit-identical either way — the ordering only fires the walk's stop
	// condition earlier — so the flag exists for benchmarking and
	// verification, not correctness. DisableCascade implies it.
	DisableEnvOrdering bool
	// RefineWorkers bounds the intra-query parallelism of the refinement
	// step (candidate fetch + cascade + exact DTW): 0 means GOMAXPROCS,
	// 1 restores the fully serial execution, and results are bit-identical
	// at every setting. On a sharded database this is the total budget one
	// query spends across the shards it fans out to, so fan-out × refine
	// parallelism never oversubscribes the machine.
	RefineWorkers int
	// Band is the default Sakoe–Chiba band half-width queries search under.
	// 0 (the zero value) answers the paper's unconstrained time warping
	// distance — the historical behavior. A value ≥ 1 makes every query
	// answer the banded distance BandDistance(S, Q, band) instead: only
	// warpings within the band are permissible, which both sharpens the
	// similarity model and unlocks the banded envelope cascade tiers
	// (LB_Keogh on the banded envelope and Lemire's LB_Improved). Negative
	// values are rejected at query time. Per-query overrides: SearchBand,
	// NearestKBand, SearchBatchBand.
	//
	// Every search remains exact for the distance it answers: all filter
	// tiers lower-bound BandDistance (a band only removes permissible
	// warpings, so BandDistance ≥ Distance ≥ every unconstrained bound),
	// and banded results are bit-identical to a brute-force banded scan.
	Band int
	// SeqCacheBytes sizes the decoded-sequence cache (per shard, for a
	// sharded database): hot sequences are served from memory without page
	// I/O or deserialization. 0 disables the cache, keeping the paper's
	// per-query disk-access accounting exact — which is why it is opt-in.
	SeqCacheBytes int64
	// SlowQueryThreshold, when positive, makes every query whose wall time
	// reaches it emit one flat key=value log line (query kind, request ID,
	// query length, ε or k, per-phase timings, candidate and prune counts)
	// to SlowQueryLogger. 0 disables slow-query logging.
	SlowQueryThreshold time.Duration
	// SlowQueryLogger receives slow-query lines (nil = log.Default()). A
	// *log.Logger is safe for concurrent use, so one logger may serve many
	// databases.
	SlowQueryLogger *log.Logger
	// ResultCacheBytes sizes the whole-query result cache: a byte-budgeted
	// LRU of exact answers keyed by (query, kind, ε or k, band, base,
	// engine). A hit returns the stored matches with zero index, heap, or
	// DTW work and a fresh RequestID. Coherence is by write generation:
	// every Add/AddAll/AddBatch/Remove/Repair bumps a per-database counter,
	// and an entry whose generation stamp is stale is discarded on lookup —
	// a cached answer is therefore always bit-identical to a recomputation
	// (see internal/core.ResultCache). 0 disables the cache. On a sharded
	// database the cache lives at the top level only (per-shard caches would
	// double the memory for no extra hits).
	ResultCacheBytes int64
	// QueryDeadline, when positive, bounds every query's execution: a query
	// exceeding it is abandoned at its next candidate boundary with
	// context.DeadlineExceeded. It composes with caller contexts (SearchCtx
	// et al.): whichever expires first cancels. 0 means no deadline.
	QueryDeadline time.Duration
	// WAL enables the group-commit write-ahead log on on-disk databases:
	// every acknowledged Add/AddBatch/Remove survives a crash (Open
	// replays the log tail over the heap), and concurrent writers share
	// fsyncs instead of paying one each. Ignored by in-memory databases,
	// which have nothing durable to protect. See internal/wal and
	// DESIGN.md §14.
	WAL bool
	// WALFlushInterval is how long the WAL committer lingers after the
	// first record of a batch before fsyncing, bounding write latency to
	// roughly the interval plus one fsync (0 = wal.DefaultFlushInterval,
	// 2ms; negative = fsync as soon as the committer wakes).
	WALFlushInterval time.Duration
	// WALFlushBytes flushes a WAL batch early once its pending bytes
	// exceed it (0 = wal.DefaultFlushBytes, 256 KiB).
	WALFlushBytes int
	// WALCheckpointBytes auto-checkpoints (full Flush + log reset) when
	// the log file grows past it, bounding replay time and the window a
	// replica can lag before needing a snapshot re-bootstrap
	// (0 = 64 MiB; negative disables auto-checkpointing).
	WALCheckpointBytes int64
}

// refineWorkers resolves the intra-query parallelism default. The public
// layer (not core) owns the GOMAXPROCS resolution so zero-valued direct
// core constructions stay serial and deterministic.
func (o Options) refineWorkers() int {
	if o.RefineWorkers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.RefineWorkers
}

// applyDeadline attaches Options.QueryDeadline to the caller's context (nil
// means no caller context). The returned cancel must always be called; with
// no deadline configured it is a no-op and the context passes through
// untouched.
func (o Options) applyDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if o.QueryDeadline <= 0 {
		return ctx, func() {}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithTimeout(ctx, o.QueryDeadline)
}

// RepairStats summarizes the Open-time reconciliation between the sequence
// heap and the feature index (see Open and Repair).
type RepairStats = core.RepairStats

// DB is a sequence database with the paper's 4-d feature index kept in sync
// with the stored sequences. A DB is safe for concurrent readers; writers
// require external serialization.
type DB struct {
	store       *seqdb.DB
	index       core.Index
	envs        *core.EnvStore
	base        Base
	dir         string // empty when in-memory
	opts        Options
	engine      string // resolved index engine
	repair      RepairStats
	envsRebuilt bool     // Open rebuilt the envelope sidecar; Flush persists it
	openNotes   []string // one line per Open-time repair/rebuild (OpenDiagnostics)
	// gen is the write generation: bumped after every mutation
	// (Add/AddAll/Remove/Repair) and read by queries before their first
	// index or heap access, it stamps result-cache entries so a cached
	// answer is served only while the database is byte-for-byte the one
	// that computed it.
	gen    atomic.Uint64
	rcache *core.ResultCache // nil when Options.ResultCacheBytes == 0
	// wal is the group-commit write-ahead log (nil unless Options.WAL on
	// an on-disk database); walReplayed records that Open applied logged
	// mutations, forcing a reconcile + checkpoint before Open returns.
	wal         *wal.Log
	walReplayed bool
}

const (
	indexFileName     = "feature.rtree" // guttman engine page file
	flatIndexFileName = "feature.flat"  // flat engine snapshot file
	envsFileName      = "envelopes.paa"
)

// resolveEngine picks the index engine: the explicit option when set, else
// the engine an existing on-disk database was created with (detected from
// which index file is present), else guttman.
func (o Options) resolveEngine(dir string) string {
	if o.IndexEngine != "" {
		return o.IndexEngine
	}
	if dir != "" {
		if _, err := os.Stat(filepath.Join(dir, flatIndexFileName)); err == nil {
			return core.EngineFlat
		}
	}
	return core.EngineGuttman
}

// indexFileFor returns the index file name the engine persists to.
func indexFileFor(engine string) string {
	if engine == core.EngineFlat {
		return flatIndexFileName
	}
	return indexFileName
}

// indexOptions assembles the core-level index options for the resolved
// engine; path is empty for in-memory databases.
func (o Options) indexOptions(engine, path string) core.IndexOptions {
	return core.IndexOptions{
		Engine:             engine,
		PageSize:           o.PageSize,
		PoolPages:          o.PoolPages,
		Split:              o.Split,
		OnDiskPath:         path,
		FlatMergeThreshold: o.FlatMergeThreshold,
	}
}

// note records one Open-time diagnostic line (see OpenDiagnostics).
func (db *DB) note(format string, args ...any) {
	db.openNotes = append(db.openNotes, fmt.Sprintf(format, args...))
}

// OpenDiagnostics returns one human-readable line per repair or rebuild the
// most recent Open (or Repair) performed — index rebuilt from the heap,
// snapshot file rejected by its checksum, envelope sidecar re-derived.
// Empty when the database opened clean. twsimd logs each line at startup so
// silent self-healing leaves a trace.
func (db *DB) OpenDiagnostics() []string {
	return append([]string(nil), db.openNotes...)
}

// IndexEngineStats describes the resolved index engine: its name and, for
// the flat engine, snapshot generation, delta size, merge count, and
// snapshot slab size.
func (db *DB) IndexEngineStats() core.IndexEngineStats { return db.index.EngineStats() }

// OpenMem creates an ephemeral in-memory database (page layout and buffer
// accounting identical to the on-disk form).
func OpenMem(opts Options) (*DB, error) {
	store, err := seqdb.NewMem(seqdb.Options{PageSize: opts.PageSize, PoolPages: opts.PoolPages, CacheBytes: opts.SeqCacheBytes})
	if err != nil {
		return nil, err
	}
	engine := opts.resolveEngine("")
	index, err := core.NewIndex(opts.indexOptions(engine, ""))
	if err != nil {
		store.Close()
		return nil, err
	}
	return &DB{store: store, index: index, envs: core.NewEnvStore(), base: opts.Base, opts: opts, engine: engine,
		rcache: core.NewResultCache(opts.ResultCacheBytes)}, nil
}

// Create creates a new on-disk database in directory dir.
func Create(dir string, opts Options) (*DB, error) {
	store, err := seqdb.Create(dir, seqdb.Options{PageSize: opts.PageSize, PoolPages: opts.PoolPages, CacheBytes: opts.SeqCacheBytes})
	if err != nil {
		return nil, err
	}
	engine := opts.resolveEngine("")
	index, err := core.NewIndex(opts.indexOptions(engine, filepath.Join(dir, indexFileFor(engine))))
	if err != nil {
		store.Close()
		return nil, err
	}
	db := &DB{store: store, index: index, envs: core.NewEnvStore(), base: opts.Base, dir: dir, opts: opts, engine: engine,
		rcache: core.NewResultCache(opts.ResultCacheBytes)}
	if opts.WAL {
		wlog, err := wal.Create(filepath.Join(dir, walFileName), 1, opts.walOptions())
		if err != nil {
			store.Close()
			index.Close()
			return nil, err
		}
		db.wal = wlog
	}
	return db, nil
}

// Open opens an existing on-disk database.
//
// Open is self-healing: when the feature index and the sequence heap
// disagree — an interrupted write left an orphaned heap record or a
// dangling index entry — Open reconciles them by re-deriving feature
// vectors from the live heap records and patching the index, and when the
// index file is missing or unreadable it is rebuilt from scratch by
// scanning the heap. The heap is the source of truth; the index is always
// derivable from it. LastRepair reports what, if anything, was fixed.
func Open(dir string, opts Options) (*DB, error) {
	store, err := seqdb.Open(dir, seqdb.Options{PageSize: opts.PageSize, PoolPages: opts.PoolPages, CacheBytes: opts.SeqCacheBytes})
	if err != nil {
		return nil, fmt.Errorf("twsim: %s does not contain a database: %w", dir, err)
	}
	engine := opts.resolveEngine(dir)
	db := &DB{store: store, base: opts.Base, dir: dir, opts: opts, engine: engine,
		rcache: core.NewResultCache(opts.ResultCacheBytes)}
	if opts.WAL {
		// Replay the WAL tail over the heap before the index opens: the
		// index layers below reconcile against whatever the heap holds, so
		// recovered appends and tombstones are re-indexed (or dropped) by
		// the exact same LastRepair machinery an unlogged crash uses.
		if err := db.openWAL(); err != nil {
			store.Close()
			return nil, fmt.Errorf("twsim: write-ahead log: %w", err)
		}
	}
	index, err := core.OpenIndex(filepath.Join(dir, indexFileFor(engine)), opts.indexOptions(engine, ""))
	if err != nil {
		// Unopenable (missing, truncated, corrupt CRC, wrong dimension):
		// rebuild it from the heap.
		db.note("index engine=%s file=%s rebuilt-on-open: %v", engine, indexFileFor(engine), err)
		if err := db.rebuildIndex(); err != nil {
			store.Close()
			return nil, fmt.Errorf("twsim: rebuilding index: %w", err)
		}
		if err := db.loadEnvs(); err != nil {
			db.Close()
			return nil, fmt.Errorf("twsim: rebuilding envelope store: %w", err)
		}
		if db.envsRebuilt {
			db.note("envelope-sidecar rebuilt-on-open: entries=%d", db.envs.Len())
		}
		if err := db.Flush(); err != nil {
			db.Close()
			return nil, err
		}
		return db, nil
	}
	db.index = index
	dirty := false
	if index.Len() != store.Len() || db.walReplayed {
		// Replayed mutations can leave the live count unchanged (an add
		// plus a remove) while contents diverge, so any replay forces the
		// reconcile rather than trusting the count check alone.
		db.note("index engine=%s reconciled-on-open: indexed=%d live=%d", engine, index.Len(), store.Len())
		if _, err := db.Repair(); err != nil {
			db.Close()
			return nil, err
		}
		dirty = true
	}
	if err := db.loadEnvs(); err != nil {
		db.Close()
		return nil, fmt.Errorf("twsim: rebuilding envelope store: %w", err)
	}
	if db.envsRebuilt {
		db.note("envelope-sidecar rebuilt-on-open: entries=%d", db.envs.Len())
	}
	if dirty || db.envsRebuilt {
		if err := db.Flush(); err != nil {
			db.Close()
			return nil, err
		}
	}
	return db, nil
}

// loadEnvs populates db.envs from the sidecar file, falling back to a
// heap-scan rebuild whenever the sidecar is missing, damaged, or its entry
// count disagrees with the heap — which is both the recovery path for a
// crash between heap write and Flush and the migration path for databases
// created before envelopes existed (they grow the sidecar on first open).
// The count check suffices for correctness: IDs are never reused, so a
// stored envelope can only be present-or-absent, never wrong for a live ID.
func (db *DB) loadEnvs() error {
	if db.dir == "" {
		db.envs = core.NewEnvStore()
		return nil
	}
	if es, err := core.LoadEnvStore(filepath.Join(db.dir, envsFileName)); err == nil && es.Len() == db.store.Len() {
		db.envs = es
		return nil
	}
	es, err := core.BuildEnvStore(db.store)
	if err != nil {
		return err
	}
	db.envs = es
	db.envsRebuilt = true
	return nil
}

// rebuildIndex replaces db.index with one bulk-loaded from the live heap
// records, recording the repair in db.repair. Both engines' index files are
// removed first (when on disk): rebuilding under one engine must not leave
// the other engine's stale file behind to be auto-detected — and silently
// resurrected — by a later engine-less Open. The previous index, if any,
// must already be closed.
func (db *DB) rebuildIndex() error {
	path := ""
	if db.dir != "" {
		for _, name := range []string{indexFileName, flatIndexFileName} {
			if err := os.Remove(filepath.Join(db.dir, name)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		path = filepath.Join(db.dir, indexFileFor(db.engine))
	}
	index, rs, err := core.RebuildIndex(db.store, db.opts.indexOptions(db.engine, path))
	if err != nil {
		return err
	}
	db.index = index
	db.repair = rs
	return nil
}

// LastRepair returns the statistics of the reconciliation Open (or Repair)
// performed. The zero value means the database opened consistent.
func (db *DB) LastRepair() RepairStats { return db.repair }

// Repair reconciles the feature index with the live heap records on demand
// — the fsck-and-fix counterpart to Verify, usable on any database (not
// just at Open time). When the index structure is intact it is patched in
// place (orphans re-indexed, dangling entries removed); when it is damaged
// beyond entry-level patching the index is rebuilt from the heap, which is
// always possible because the heap is the source of truth. It returns what
// it had to change.
func (db *DB) Repair() (RepairStats, error) {
	defer db.gen.Add(1)
	rs, err := db.repairIndex()
	if err != nil {
		return rs, err
	}
	// The envelope store is as derivable from the heap as the index is;
	// whatever inconsistency prompted the repair may have touched it too, so
	// re-derive it wholesale (it is small: ~264 bytes per sequence).
	if db.envs != nil {
		es, err := core.BuildEnvStore(db.store)
		if err != nil {
			return rs, fmt.Errorf("twsim: rebuilding envelope store: %w", err)
		}
		db.envs = es
		db.envsRebuilt = true
	}
	return rs, nil
}

func (db *DB) repairIndex() (RepairStats, error) {
	if db.index.CheckInvariants() == nil {
		rs, err := core.Reconcile(db.store, db.index)
		if err == nil {
			db.repair = rs
			return rs, nil
		}
	}
	// Structure damaged (or patching failed): rebuild from scratch.
	db.index.Close()
	if err := db.rebuildIndex(); err != nil {
		return db.repair, fmt.Errorf("twsim: rebuilding index: %w", err)
	}
	return db.repair, nil
}

// Base returns the configured base distance.
func (db *DB) Base() Base { return db.base }

// Len returns the number of stored sequences.
func (db *DB) Len() int { return db.store.Len() }

// applyAdd performs the in-memory/in-heap half of Add: validate, append,
// index, envelope. The public Add/AddCommit wrappers in durability.go own
// WAL logging and the durability acknowledgment.
func (db *DB) applyAdd(values []float64) (ID, error) {
	if err := seq.CheckFinite(values); err != nil {
		return seq.InvalidID, err
	}
	// Bump the write generation after the mutation, before returning —
	// including on a rolled-back failure (the rollback is best effort, so
	// over-invalidating the result cache is the conservative side).
	defer db.gen.Add(1)
	s := seq.Sequence(values)
	id, err := db.store.Append(s)
	if err != nil {
		return seq.InvalidID, err
	}
	if err := db.index.Insert(id, s); err != nil {
		if rbErr := db.store.RollbackLast(id); rbErr != nil {
			return seq.InvalidID, fmt.Errorf("twsim: sequence %d not indexed (%w) and not rolled back: %v", id, err, rbErr)
		}
		return seq.InvalidID, fmt.Errorf("twsim: sequence %d not indexed (rolled back): %w", id, err)
	}
	if pe, err := seq.ExtractPAAEnvelope(s); err == nil {
		db.envs.Put(id, pe)
	}
	return id, nil
}

// applyAddAll performs the in-memory/in-heap half of AddAll (see the
// public wrapper in durability.go for the contract).
func (db *DB) applyAddAll(values [][]float64) (ID, error) {
	if len(values) == 0 {
		return seq.InvalidID, errors.New("twsim: AddAll of empty batch")
	}
	defer db.gen.Add(1)
	// Validate the whole batch before the first append: a non-finite
	// sequence mid-batch would otherwise trigger the rollback machinery for
	// an error that was knowable upfront.
	for i, v := range values {
		if err := seq.CheckFinite(v); err != nil {
			return seq.InvalidID, fmt.Errorf("twsim: batch sequence %d: %w", i, err)
		}
	}
	appended := make([]ID, 0, len(values))
	indexed := make([]seq.Sequence, 0, len(values)) // sequences with index entries
	// rollback undoes the partial batch in reverse append order; storage
	// errors during rollback are secondary — Open-time reconciliation
	// covers whatever best effort could not.
	rollback := func() {
		for i := len(appended) - 1; i >= 0; i-- {
			if i < len(indexed) {
				_, _ = db.index.Delete(appended[i], indexed[i])
			}
			db.envs.Remove(appended[i])
			_ = db.store.RollbackLast(appended[i])
		}
		if db.index.Len() != db.store.Len() {
			// An index delete failed too (the storage fault that aborted
			// the batch is likely still active). Fall back to rebuilding
			// the index from the heap, which is the source of truth; if
			// even that fails the divergence is caught at the next Open.
			_, _ = db.Repair()
		}
	}
	if db.store.Len() > 0 {
		for _, v := range values {
			s := seq.Sequence(v)
			id, err := db.store.Append(s)
			if err != nil {
				rollback()
				return seq.InvalidID, err
			}
			appended = append(appended, id)
			if err := db.index.Insert(id, s); err != nil {
				rollback()
				return seq.InvalidID, fmt.Errorf("twsim: batch aborted at sequence %d: %w", len(appended)-1, err)
			}
			indexed = append(indexed, s)
			if pe, err := seq.ExtractPAAEnvelope(s); err == nil {
				db.envs.Put(id, pe)
			}
		}
		return appended[0], nil
	}
	loader, wantEnvs := db.index.(core.EnvBulkLoader)
	features := make([]seq.Feature, 0, len(values))
	var envelopes []seq.PAAEnvelope
	if wantEnvs {
		envelopes = make([]seq.PAAEnvelope, 0, len(values))
	}
	for _, v := range values {
		s := seq.Sequence(v)
		f, err := seq.ExtractFeature(s)
		if err != nil {
			rollback()
			return seq.InvalidID, err
		}
		if wantEnvs {
			pe, err := seq.ExtractPAAEnvelope(s)
			if err != nil {
				rollback()
				return seq.InvalidID, err
			}
			envelopes = append(envelopes, pe)
		}
		id, err := db.store.Append(s)
		if err != nil {
			rollback()
			return seq.InvalidID, err
		}
		appended = append(appended, id)
		features = append(features, f)
	}
	// BulkLoad is internally atomic: on failure the index is still empty
	// and only the heap appends need undoing. Engines that pack PAA
	// envelopes into the index (the flat engine) get them supplied here so
	// the packed leaves are envelope-tight from the first query.
	var loadErr error
	if wantEnvs {
		loadErr = loader.BulkLoadEnv(appended, features, envelopes)
	} else {
		loadErr = db.index.BulkLoad(appended, features)
	}
	if loadErr != nil {
		rollback()
		return seq.InvalidID, loadErr
	}
	for i, id := range appended {
		if pe, err := seq.ExtractPAAEnvelope(seq.Sequence(values[i])); err == nil {
			db.envs.Put(id, pe)
		}
	}
	return appended[0], nil
}

// applyRemove performs the in-memory/in-heap half of Remove (see the
// public wrapper in durability.go).
func (db *DB) applyRemove(id ID) (bool, error) {
	defer db.gen.Add(1)
	s, err := db.store.Get(id)
	if err != nil {
		if errors.Is(err, seqdb.ErrDeleted) || errors.Is(err, seqdb.ErrNotFound) {
			return false, nil
		}
		return false, err
	}
	if _, err := db.index.Delete(id, s); err != nil {
		return false, err
	}
	db.envs.Remove(id)
	return db.store.Delete(id)
}

// Get fetches a stored sequence by ID.
func (db *DB) Get(id ID) ([]float64, error) {
	s, err := db.store.Get(id)
	if err != nil {
		return nil, err
	}
	if db.opts.SeqCacheBytes > 0 {
		// The store may have served a cached sequence shared with concurrent
		// readers; hand the caller a private copy it is free to mutate.
		return append([]float64(nil), s...), nil
	}
	return []float64(s), nil
}

// searcher builds the query engine with the given intra-query worker count
// and Sakoe–Chiba band half-width (0 = unconstrained). ctx, when non-nil,
// cancels the query at its next candidate boundary.
func (db *DB) searcher(ctx context.Context, workers, band int) *core.TWSimSearch {
	return &core.TWSimSearch{DB: db.store, Index: db.index, Base: db.base,
		NoCascade: db.opts.DisableCascade, NoEnvOrder: db.opts.DisableEnvOrdering,
		Workers: workers, Band: band, Envs: db.envs, Ctx: ctx}
}

// Generation returns the database's current write generation — the counter
// the result cache stamps entries with. It advances on every mutation, so
// two equal readings bracket a window in which no write was acknowledged.
func (db *DB) Generation() uint64 { return db.gen.Load() }

// ResultCacheStats snapshots the whole-query result cache counters (all
// zero when the cache is disabled).
func (db *DB) ResultCacheStats() core.ResultCacheStats { return db.rcache.Stats() }

// DefaultBand returns the band half-width queries run under when no
// per-call override is given (Options.Band).
func (db *DB) DefaultBand() int { return db.opts.Band }

// cachedResult assembles the Result a cache hit returns: the stored matches
// (already a private copy), zero work counters — no index walk, fetch, or
// DTW ran, so the conservation law holds trivially as 0 = 0 — and a fresh
// RequestID stamped by the caller.
func cachedResult(ms []Match, start time.Time) *Result {
	res := &Result{Matches: ms, CacheHit: true}
	res.Stats.Results = len(ms)
	res.Stats.Wall = time.Since(start)
	return res
}

// validateBand rejects invalid band half-widths at the API boundary. 0 is
// the unconstrained distance; ≥ 1 is a Sakoe–Chiba half-width; negative
// values have no meaning at this layer and are an error (the internal dtw
// package's r<0 = unconstrained convention is deliberately not exposed —
// the zero value must mean "historical behavior").
func validateBand(band int) error {
	if band < 0 {
		return fmt.Errorf("twsim: negative band half-width %d", band)
	}
	return nil
}

// Search finds every sequence whose time warping distance to query is at
// most epsilon, using the paper's TW-Sim-Search (Algorithm 1): index range
// query with Dtw-lb, then exact DTW refinement. No false dismissal. The
// distance answered is the unconstrained Dtw when Options.Band is 0, the
// banded BandDistance otherwise.
func (db *DB) Search(query []float64, epsilon float64) (*Result, error) {
	return db.SearchBandWorkers(query, epsilon, db.opts.Band, db.opts.refineWorkers())
}

// SearchBand is Search under an explicit Sakoe–Chiba band half-width for
// this call, overriding Options.Band: 0 answers the unconstrained time
// warping distance, band ≥ 1 answers BandDistance(S, Q, band). Banded
// results are exact for the banded distance — bit-identical to a
// brute-force banded scan.
func (db *DB) SearchBand(query []float64, epsilon float64, band int) (*Result, error) {
	return db.SearchBandWorkers(query, epsilon, band, db.opts.refineWorkers())
}

// SearchWorkers is Search with an explicit intra-query refinement worker
// count for this call (≤ 1 means serial), overriding Options.RefineWorkers.
// The sharded engine uses it to spread one refine budget across shards;
// results are bit-identical at every worker count.
//
// The returned Result carries a process-unique RequestID; queries whose
// wall time reaches Options.SlowQueryThreshold are logged with it.
func (db *DB) SearchWorkers(query []float64, epsilon float64, workers int) (*Result, error) {
	return db.SearchBandWorkers(query, epsilon, db.opts.Band, workers)
}

// SearchBandWorkers is SearchBand with an explicit worker count.
func (db *DB) SearchBandWorkers(query []float64, epsilon float64, band, workers int) (*Result, error) {
	return db.SearchBandWorkersCtx(nil, query, epsilon, band, workers)
}

// SearchCtx is SearchBand governed by a context: the query is abandoned at
// its next candidate boundary once ctx is done (the context's error is
// returned), and Options.QueryDeadline, if set, caps the execution time on
// top. A completed search is bit-identical to SearchBand — cancellation
// only abandons work, it never skips a qualifying candidate.
func (db *DB) SearchCtx(ctx context.Context, query []float64, epsilon float64, band int) (*Result, error) {
	return db.SearchBandWorkersCtx(ctx, query, epsilon, band, db.opts.refineWorkers())
}

// SearchBandWorkersCtx is the most general range-query entry point —
// explicit context, band, and worker count; every other Search variant
// delegates here. The whole-query result cache, when enabled, is consulted
// first: the write generation is loaded before any index or heap read, a
// generation-stamped hit is returned with zero search work, and a computed
// answer is stored under the pre-query generation so any overlapping write
// invalidates it (see Options.ResultCacheBytes).
func (db *DB) SearchBandWorkersCtx(ctx context.Context, query []float64, epsilon float64, band, workers int) (*Result, error) {
	if len(query) == 0 {
		return nil, seq.ErrEmpty
	}
	if err := seq.CheckFinite(query); err != nil {
		return nil, err
	}
	if epsilon < 0 {
		return nil, fmt.Errorf("twsim: negative tolerance %g", epsilon)
	}
	if err := validateBand(band); err != nil {
		return nil, err
	}
	start := time.Now()
	var key string
	var preGen uint64
	if db.rcache != nil {
		key = core.ResultCacheKey('r', db.base, db.engine, band, epsilon, 0, query)
		preGen = db.gen.Load() // before any index/heap read of this query
		if ms, ok := db.rcache.Get(key, preGen); ok {
			res := cachedResult(ms, start)
			res.RequestID = nextRequestID()
			db.opts.logSlowQuery("search", res.RequestID, len(query), fmt.Sprintf("epsilon=%g band=%d", epsilon, band), res.Stats)
			return res, nil
		}
	}
	ctx, cancel := db.opts.applyDeadline(ctx)
	defer cancel()
	res, err := db.searcher(ctx, workers, band).Search(seq.Sequence(query), epsilon)
	if err != nil {
		return nil, err
	}
	if db.rcache != nil {
		db.rcache.Put(key, preGen, res.Matches)
	}
	res.RequestID = nextRequestID()
	db.opts.logSlowQuery("search", res.RequestID, len(query), fmt.Sprintf("epsilon=%g band=%d", epsilon, band), res.Stats)
	return res, nil
}

// NearestK returns the k sequences with the smallest exact time warping
// distance to query, in ascending distance order (an extension enabled by
// Dtw-lb being a true lower bound of Dtw). The distance is unconstrained
// when Options.Band is 0, banded otherwise.
func (db *DB) NearestK(query []float64, k int) ([]Match, error) {
	res, err := db.NearestKStats(query, k)
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}

// NearestKBand is NearestK under an explicit Sakoe–Chiba band half-width
// for this call, overriding Options.Band (0 = unconstrained).
func (db *DB) NearestKBand(query []float64, k, band int) ([]Match, error) {
	res, err := db.NearestKStatsBand(query, k, band)
	if err != nil {
		return nil, err
	}
	return res.Matches, nil
}

// NearestKStats is NearestK returning the full Result: the matches plus the
// query's work counters (candidates, cascade prune tiers, DTW calls, wall
// time) and its RequestID. The serving layer uses it to export k-NN traffic
// into the same metrics and slow-query log as range searches.
func (db *DB) NearestKStats(query []float64, k int) (*Result, error) {
	return db.NearestKStatsBand(query, k, db.opts.Band)
}

// NearestKStatsBand is NearestKStats under an explicit band half-width for
// this call, overriding Options.Band (0 = unconstrained).
func (db *DB) NearestKStatsBand(query []float64, k, band int) (*Result, error) {
	return db.NearestKCtx(nil, query, k, band)
}

// NearestKCtx is NearestKStatsBand governed by a context: the walk is
// abandoned at its next candidate boundary once ctx is done, and
// Options.QueryDeadline, if set, caps the execution time on top. The
// whole-query result cache, when enabled, serves repeated queries without
// re-running the walk (see SearchBandWorkersCtx for the coherence
// protocol).
func (db *DB) NearestKCtx(ctx context.Context, query []float64, k, band int) (*Result, error) {
	if len(query) == 0 {
		return nil, seq.ErrEmpty
	}
	if err := seq.CheckFinite(query); err != nil {
		return nil, err
	}
	if err := validateBand(band); err != nil {
		return nil, err
	}
	start := time.Now()
	var key string
	var preGen uint64
	if db.rcache != nil {
		key = core.ResultCacheKey('k', db.base, db.engine, band, 0, k, query)
		preGen = db.gen.Load() // before any index/heap read of this query
		if ms, ok := db.rcache.Get(key, preGen); ok {
			res := cachedResult(ms, start)
			res.RequestID = nextRequestID()
			db.opts.logSlowQuery("knn", res.RequestID, len(query), fmt.Sprintf("k=%d band=%d", k, band), res.Stats)
			return res, nil
		}
	}
	ctx, cancel := db.opts.applyDeadline(ctx)
	defer cancel()
	ms, stats, err := db.NearestKStatsBandWorkersCtx(ctx, query, k, band, nil, db.opts.refineWorkers())
	if err != nil {
		return nil, err
	}
	if db.rcache != nil {
		db.rcache.Put(key, preGen, ms)
	}
	res := &Result{Matches: ms, Stats: stats, RequestID: nextRequestID()}
	db.opts.logSlowQuery("knn", res.RequestID, len(query), fmt.Sprintf("k=%d band=%d", k, band), res.Stats)
	return res, nil
}

// StorageStats snapshots the storage-layer counters: data and index buffer
// pools plus the decoded-sequence cache (zero when disabled).
func (db *DB) StorageStats() StorageStats {
	return StorageStats{Data: db.store.Stats(), Index: db.index.Stats(), Cache: db.store.CacheStats()}
}

// Distance computes the exact time warping distance between a stored
// sequence and an arbitrary query under the database's base distance.
func (db *DB) Distance(id ID, query []float64) (float64, error) {
	s, err := db.store.Get(id)
	if err != nil {
		return 0, err
	}
	return Distance(s, query, db.base), nil
}

// IndexPages returns the number of pages the feature index occupies — the
// paper observes the index stays below 4% of the database size (§5.2).
func (db *DB) IndexPages() int { return db.index.Pages() }

// DataBytes returns the logical size of the stored sequence data.
func (db *DB) DataBytes() int64 { return db.store.Bytes() }

// CheckInvariants validates the index structure (tests and repair tooling).
func (db *DB) CheckInvariants() error { return db.index.CheckInvariants() }

// Flush persists all state to disk (no-op for in-memory databases). With
// the WAL enabled a successful Flush is also a checkpoint: once the heap
// pages are fsynced, the manifest renamed and dir-synced, and the index
// and envelope sidecar saved, every logged mutation is durable by other
// means, so the log resets to an empty file with a higher base sequence
// number (pending waiters are released — their records are durable too).
func (db *DB) Flush() error {
	if err := db.store.Flush(); err != nil {
		return err
	}
	if err := db.index.Flush(); err != nil {
		return err
	}
	if db.dir != "" && db.envs != nil {
		if err := db.envs.Save(filepath.Join(db.dir, envsFileName)); err != nil {
			return fmt.Errorf("twsim: saving envelope store: %w", err)
		}
		db.envsRebuilt = false
	}
	if db.wal != nil {
		if err := db.wal.Checkpoint(); err != nil {
			return fmt.Errorf("twsim: wal checkpoint: %w", err)
		}
	}
	return nil
}

// Close flushes and releases the database. With the WAL enabled the log
// is checkpointed (emptied) on a clean close, so the next Open has
// nothing to replay.
func (db *DB) Close() error {
	var envErr error
	if db.dir != "" && db.envs != nil {
		if err := db.envs.Save(filepath.Join(db.dir, envsFileName)); err != nil {
			envErr = fmt.Errorf("twsim: saving envelope store: %w", err)
		}
	}
	err1 := db.store.Close()
	err2 := db.index.Close()
	var walErr error
	if db.wal != nil {
		// The store Close above flushed and fsynced the heap + manifest,
		// so the checkpoint's precondition holds; a checkpoint failure
		// just leaves the tail to be replayed (idempotently) at next Open.
		if envErr == nil && err1 == nil && err2 == nil {
			if err := db.wal.Checkpoint(); err != nil && !errors.Is(err, wal.ErrClosed) {
				walErr = fmt.Errorf("twsim: wal checkpoint: %w", err)
			}
		}
		if err := db.wal.Close(); err != nil && walErr == nil {
			walErr = fmt.Errorf("twsim: wal close: %w", err)
		}
	}
	if err1 != nil {
		return err1
	}
	if err2 != nil {
		return err2
	}
	if envErr != nil {
		return envErr
	}
	return walErr
}
