package twsim

// Crash simulation for the WAL: each test builds a "crash image" — a
// byte-level copy of the database directory taken while the database is
// still open, so nothing beyond what fsync covered is on "disk" — then
// reopens the image and requires the recovered state to match a
// never-crashed database holding exactly the acknowledged writes, record
// for record and query for query.

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fsx"
	"repro/internal/wal"
)

// crashOpts runs the WAL with immediate fsync so every returned Add/Remove
// is acknowledged-durable the moment it returns.
func crashOpts() Options {
	return Options{WAL: true, WALFlushInterval: -1}
}

func crashSequences(n, length int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, length)
		v := rng.Float64() * 10
		for j := range s {
			v += rng.Float64() - 0.5
			s[j] = v
		}
		out[i] = s
	}
	return out
}

// copyTree copies the database directory byte for byte — the crash image.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copying crash image: %v", err)
	}
}

// requireIdentical asserts got holds exactly the state of want: same live
// count, same per-ID contents (including tombstones), and bit-identical
// Search answers for a probe query.
func requireIdentical(t *testing.T, got, want *DB, probe []float64) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	if gn, wn := got.NumRecords(), want.NumRecords(); gn != wn {
		t.Fatalf("NumRecords = %d, want %d", gn, wn)
	}
	for id := 0; id < want.NumRecords(); id++ {
		wv, werr := want.Get(ID(id))
		gv, gerr := got.Get(ID(id))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("record %d liveness differs: want err %v, got err %v", id, werr, gerr)
		}
		if werr != nil {
			continue
		}
		if len(wv) != len(gv) {
			t.Fatalf("record %d length differs", id)
		}
		for k := range wv {
			if math.Float64bits(wv[k]) != math.Float64bits(gv[k]) {
				t.Fatalf("record %d element %d differs: %v vs %v", id, k, wv[k], gv[k])
			}
		}
	}
	wres, err := want.Search(probe, 25)
	if err != nil {
		t.Fatal(err)
	}
	gres, err := got.Search(probe, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(wres.Matches) != len(gres.Matches) {
		t.Fatalf("search matches = %d, want %d", len(gres.Matches), len(wres.Matches))
	}
	for i := range wres.Matches {
		if wres.Matches[i].ID != gres.Matches[i].ID ||
			math.Float64bits(wres.Matches[i].Dist) != math.Float64bits(gres.Matches[i].Dist) {
			t.Fatalf("search match %d differs: %+v vs %+v", i, gres.Matches[i], wres.Matches[i])
		}
	}
}

// buildReference constructs the never-crashed database holding the given
// writes (applied in the same order).
func buildReference(t *testing.T, seqs [][]float64, removes []ID) *DB {
	t.Helper()
	ref, err := Create(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })
	for _, s := range seqs {
		if _, err := ref.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range removes {
		if _, err := ref.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	return ref
}

// TestCrashKillAndReopenLosesNothing is the headline acceptance check:
// kill -9 (simulated by copying the directory mid-flight, no Flush/Close)
// and reopen — every acknowledged write survives.
func TestCrashKillAndReopenLosesNothing(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dir, crashOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	seqs := crashSequences(30, 24, 11)
	for _, s := range seqs {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	removes := []ID{2, 17}
	for _, id := range removes {
		if ok, err := db.Remove(id); err != nil || !ok {
			t.Fatalf("Remove(%d) = %v, %v", id, ok, err)
		}
	}

	crash := filepath.Join(t.TempDir(), "crash")
	copyTree(t, dir, crash)

	re, err := Open(crash, crashOpts())
	if err != nil {
		t.Fatalf("reopening crash image: %v", err)
	}
	defer re.Close()
	requireIdentical(t, re, buildReference(t, seqs, removes), seqs[5])
}

// TestCrashTornFinalRecord chops the crash image's WAL mid-way through the
// final record — the classic torn write. The final write was therefore
// never acknowledged; recovery must keep everything before it and heal the
// log.
func TestCrashTornFinalRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dir, crashOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	seqs := crashSequences(12, 24, 12)
	for _, s := range seqs {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}

	crash := filepath.Join(t.TempDir(), "crash")
	copyTree(t, dir, crash)

	// Find the last record's start via a full scan, then cut into it.
	walPath := filepath.Join(crash, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	const headerLen = 16
	recs, _, serr := wal.ScanRecords(raw[headerLen:], 1)
	if serr != nil || len(recs) != len(seqs) {
		t.Fatalf("precondition: scanned %d records, err %v", len(recs), serr)
	}
	offs := recordOffsets(t, raw[headerLen:])
	lastStart := headerLen + offs[len(offs)-1]
	cut := lastStart + (len(raw)-lastStart)/2
	if err := os.WriteFile(walPath, raw[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(crash, crashOpts())
	if err != nil {
		t.Fatalf("reopening torn image: %v", err)
	}
	defer re.Close()
	requireIdentical(t, re, buildReference(t, seqs[:len(seqs)-1], nil), seqs[3])

	// The torn tail must have been truncated away so new writes append
	// cleanly and survive the next replay.
	if _, err := re.Add(seqs[len(seqs)-1]); err != nil {
		t.Fatal(err)
	}
	if re.Len() != len(seqs) {
		t.Fatalf("post-heal Len = %d, want %d", re.Len(), len(seqs))
	}
}

// TestCrashCorruptMiddleRecord flips a byte in the middle of the crash
// image's WAL: replay must apply the valid prefix and stop, never applying
// records past the corruption.
func TestCrashCorruptMiddleRecord(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dir, crashOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	seqs := crashSequences(10, 24, 13)
	for _, s := range seqs {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}

	crash := filepath.Join(t.TempDir(), "crash")
	copyTree(t, dir, crash)

	walPath := filepath.Join(crash, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	const headerLen = 16
	offs := recordOffsets(t, raw[headerLen:])
	if len(offs) != len(seqs) {
		t.Fatalf("precondition: %d record offsets", len(offs))
	}
	// Corrupt record 5's payload: everything from record 5 on is lost (the
	// valid prefix is records 0..4).
	mid := headerLen + offs[5] + 10
	raw[mid] ^= 0xFF
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(crash, crashOpts())
	if err != nil {
		t.Fatalf("reopening corrupt image: %v", err)
	}
	defer re.Close()
	requireIdentical(t, re, buildReference(t, seqs[:5], nil), seqs[3])
}

// TestCrashDuplicateReplayAfterCheckpointedHeap simulates a crash between
// the heap flush and the WAL truncation inside a checkpoint: the heap
// already holds every record, and the WAL still holds every record. Replay
// must recognize each record as already applied and skip it — applying
// any of them twice would duplicate records.
func TestCrashDuplicateReplayAfterCheckpointedHeap(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	db, err := Create(dir, crashOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	seqs := crashSequences(15, 24, 14)
	for _, s := range seqs {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	removes := []ID{1, 8}
	for _, id := range removes {
		if ok, err := db.Remove(id); err != nil || !ok {
			t.Fatalf("Remove(%d): %v %v", id, ok, err)
		}
	}
	// Flush the heap directly — NOT db.Flush(), which would also truncate
	// the WAL. This is exactly the on-disk state of a crash after the
	// checkpoint's heap fsync but before its log truncation.
	if err := db.store.Flush(); err != nil {
		t.Fatal(err)
	}

	crash := filepath.Join(t.TempDir(), "crash")
	copyTree(t, dir, crash)

	re, err := Open(crash, crashOpts())
	if err != nil {
		t.Fatalf("reopening mid-checkpoint image: %v", err)
	}
	defer re.Close()
	requireIdentical(t, re, buildReference(t, seqs, removes), seqs[4])
}

// TestDirSyncFailureSurfacesThroughSave proves the shared directory-fsync
// helper is actually on every durable save path: an injected dir-sync
// failure must surface as an error from the database's own Flush, not be
// swallowed.
func TestDirSyncFailureSurfacesThroughSave(t *testing.T) {
	db, err := Create(filepath.Join(t.TempDir(), "db"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, s := range crashSequences(5, 16, 15) {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}

	injected := errors.New("injected dir-sync failure")
	fsx.SyncDirHook = func(dir string) error { return injected }
	defer func() { fsx.SyncDirHook = nil }()

	if err := db.Flush(); !errors.Is(err, injected) {
		t.Fatalf("Flush with failing dir sync = %v, want the injected error", err)
	}

	// With the hook cleared the same flush succeeds — the failure above
	// came from the injection, not collateral state damage.
	fsx.SyncDirHook = nil
	if err := db.Flush(); err != nil {
		t.Fatalf("Flush after clearing hook: %v", err)
	}
}

// recordOffsets returns each record's byte offset within a WAL body (the
// file minus its header).
func recordOffsets(t *testing.T, body []byte) []int {
	t.Helper()
	var offs []int
	off := 0
	for off < len(body) {
		offs = append(offs, off)
		span := recordSpan(body[off:])
		if span <= 8 {
			t.Fatalf("stuck scanning wal body at offset %d", off)
		}
		off += span
	}
	return offs
}

// recordSpan reads one record's framed length from the front of buf.
func recordSpan(buf []byte) int {
	if len(buf) < 4 {
		return len(buf)
	}
	n := int(uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24)
	total := 4 + n + 4
	if total > len(buf) {
		return len(buf)
	}
	return total
}
