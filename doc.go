// Package twsim is an index-based similarity search engine for large
// sequence databases supporting time warping, reproducing Kim, Park & Chu,
// "An Index-Based Approach for Similarity Search Supporting Time Warping in
// Large Sequence Databases" (ICDE 2001).
//
// A twsim.DB stores numeric sequences of arbitrary (and differing) lengths
// in a paged heap file and maintains the paper's 4-dimensional feature
// index: each sequence S contributes the time-warping-invariant point
// (First(S), Last(S), Greatest(S), Smallest(S)) to an R-tree. Range queries
// under the time warping distance run as a square range query on the index
// using the lower-bound metric Dtw-lb followed by exact dynamic-programming
// refinement — guaranteed free of false dismissal (the paper's Theorems 1
// and 2) while touching only a small fraction of the database.
//
// # Quick start
//
//	db, _ := twsim.OpenMem(twsim.Options{})
//	defer db.Close()
//	id, _ := db.Add([]float64{20, 21, 21, 20, 20, 23, 23, 23})
//	_ = id
//	res, _ := db.Search([]float64{20, 20, 21, 20, 23}, 1.5)
//	for _, m := range res.Matches {
//		fmt.Println(m.ID, m.Dist)
//	}
//
// Beyond the paper's range search the package provides exact k-nearest-
// neighbor search (enabled by Dtw-lb being a true lower bound), direct
// access to the DTW distance family (Distance, DistanceWithin,
// BandDistance, warping paths), and the paper's evaluated baselines for
// benchmarking (see the Baseline* constructors).
//
// # Query pipeline
//
// Candidate refinement runs through a tiered cascade of true lower bounds,
// cheapest first: LB_Kim re-checked on the stored index point (before the
// heap fetch), LB_Keogh against the query's global envelope, the completed
// two-sided Yi bound, and finally a fused sparse dynamic program that
// visits only the DP cells whose exact value stays within the cutoff —
// rejecting hopeless candidates at a fraction of a full evaluation and
// producing the exact distance for survivors in the same pass. Every tier
// preserves the no-false-dismissal guarantee, results are bit-identical to
// running the plain DP on every candidate (Options.DisableCascade restores
// that behavior for comparison), and the DP kernels reuse pooled rows, so
// steady-state refinement performs no allocations. Result.Stats reports
// per-tier dismissal counters alongside the exact-DTW call count.
//
// # Crash consistency
//
// The no-false-dismissal guarantee only holds while the heap file and the
// feature index agree, so the write path keeps them in lockstep:
//
//   - Add appends to the heap first and indexes second; when indexing
//     fails the append is rolled back, so a failed Add can simply be
//     retried and never leaves a half-written sequence behind.
//   - AddAll is all-or-nothing: on a mid-batch failure every appended
//     sequence (and any index entry already made for it) is rolled back.
//     The STR bulk load used on an empty database is internally atomic.
//   - Open reconciles after a crash. The heap is the source of truth and
//     the index is always derivable from it: orphaned heap records (a
//     crash between append and index insert) are re-indexed, dangling
//     index entries are deleted, and an unopenable index file is rebuilt
//     outright. LastRepair reports what was fixed.
//   - Verify is the read-only integrity check (fsck); Repair is its
//     fixing counterpart, usable on a live database.
//
// Searches additionally skip index entries whose heap record is missing,
// so a not-yet-repaired database degrades to extra filtering work rather
// than failed or incorrect queries.
//
// # Sharding
//
// ShardedDB hash-partitions a database into N shards, each a complete DB
// (own heap file, R-tree, and buffer pool), and fans every query out over
// all of them in parallel, merging the per-shard results into the same
// answer a single DB would return. Sequence IDs encode their shard
// (ShardID(id) = id mod N), writers lock only their target shard, and
// k-nearest-neighbor fan-out shares an atomic best-k bound across shards
// so each prunes with the globally tightest cutoff. Both DB and ShardedDB
// satisfy the Backend interface; CreateSharded, OpenSharded, and
// OpenMemSharded mirror the single-database constructors, with per-shard
// crash reconciliation on open.
//
// # Intra-query parallelism and caching
//
// Options.RefineWorkers sets the per-query refinement budget: the
// candidate fetch, lower-bound cascade, and exact DTW verification run on
// up to that many goroutines (0 selects GOMAXPROCS; 1 is the exact serial
// path). On a sharded database the budget is divided among the shards a
// query fans out to, so fan-out times refine workers never exceeds the
// budget. Results are bit-identical at every setting — for range queries
// the fixed tolerance makes each candidate's verdict order-independent,
// and for k-NN the shrinking cutoff is only ever read conservatively
// (stale reads admit extra candidates, never dismiss true neighbors).
//
// The storage layer supports the worker pool with a lock-striped buffer
// pool (pages hash to independently locked stripes, so concurrent faults
// on different pages do not serialize) and an optional decoded-sequence
// cache (Options.SeqCacheBytes) whose hits skip page I/O and
// deserialization entirely; DB.StorageStats exposes wait-free hit-ratio
// counters for both.
//
// # Input validation and observability
//
// Sequences must be finite: every write and query entry point rejects
// data containing NaN or ±Inf with ErrNonFinite. The exactness guarantees
// are only defined over the reals — a NaN slips through the kernels'
// ordered comparisons as if it were −∞ or +∞ (depending on the kernel)
// and through the R-tree's rectangle predicates arbitrarily, so a single
// stored NaN once made two provably-exact search methods silently return
// different answers. Verify and CheckInvariants flag non-finite features
// that reach the index some other way (DESIGN.md §10 has the full story).
//
// For production serving, every query Result carries a process-unique
// RequestID, and Options.SlowQueryThreshold enables a slow-query log (one
// flat key=value line per offending query, carrying that same request ID
// plus per-phase timings and the cascade's work counters; destination
// Options.SlowQueryLogger, default log.Default()). QueryStats splits wall
// time into FilterWall and RefineWall, and the HTTP server in
// internal/server exports the whole pipeline — request counters, latency
// histograms, cascade/pool/cache counters — as a Prometheus /metrics
// endpoint built on the dependency-free internal/obs package.
package twsim
