GO ?= go

.PHONY: ci fmt vet build test race bench-shards bench-shards-smoke

# Full gate: formatting, static checks, build, the whole test suite
# (including the fault-injection recovery tests) under the race detector,
# and a short sharded-engine benchmark smoke.
ci: fmt vet build race bench-shards-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Sharded query engine throughput at 1/4/GOMAXPROCS shards on the synthetic
# random-walk workload; writes BENCH_shard.json.
bench-shards:
	$(GO) run ./cmd/benchshards

# Tiny workload, no output file: proves the harness runs end to end.
bench-shards-smoke:
	$(GO) run ./cmd/benchshards -smoke >/dev/null
