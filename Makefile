GO ?= go

.PHONY: ci fmt vet build test race

# Full gate: formatting, static checks, build, and the whole test suite
# (including the fault-injection recovery tests) under the race detector.
ci: fmt vet build race

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
