GO ?= go

.PHONY: ci fmt vet build test race bench-shards bench-shards-smoke bench-cascade bench-cascade-smoke

# Full gate: formatting, static checks, build, the whole test suite
# (including the fault-injection recovery tests) under the race detector,
# and short benchmark smokes for the sharded engine and the refine cascade.
ci: fmt vet build race bench-shards-smoke bench-cascade-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Sharded query engine throughput at 1/4/GOMAXPROCS shards on the synthetic
# random-walk workload; writes BENCH_shard.json.
bench-shards:
	$(GO) run ./cmd/benchshards

# Tiny workload, no output file: proves the harness runs end to end.
bench-shards-smoke:
	$(GO) run ./cmd/benchshards -smoke >/dev/null

# Refine-cascade benchmark: DTW-call reduction, per-tier prune counts,
# kernel ns/op vs the pre-kernel baseline, and steady-state allocs/op on the
# benchshards workload plus a mixed-length variant; writes BENCH_cascade.json.
bench-cascade:
	$(GO) run ./cmd/benchcascade

# Tiny workload, no output file or kernel timings; also verifies cascade and
# baseline results are bit-identical on the smoke corpus.
bench-cascade-smoke:
	$(GO) run ./cmd/benchcascade -smoke >/dev/null
