GO ?= go

.PHONY: ci fmt vet build test race test-no-mmap fuzz-smoke metrics-smoke bench-shards bench-shards-smoke bench-cascade bench-cascade-smoke bench-refine bench-refine-smoke bench-flat bench-flat-smoke bench-knn bench-knn-smoke bench-cache bench-cache-smoke bench-wal bench-wal-smoke crash-tests

# Full gate: formatting, static checks, build, the whole test suite
# (including the fault-injection recovery tests) under the race detector,
# the flat-engine suite re-run with mmap disabled (the eager-read fallback
# must behave identically), a short fuzz pass over the envelope/lower-bound
# oracles and the mmap snapshot reader, the observability smoke (boots
# twsimd, scrapes /metrics, validates the exposition), and short benchmark
# smokes for the sharded engine, the refine cascade (including the banded
# leg with its brute-force banded oracle), intra-query parallel refinement,
# the flat-vs-Guttman index engine comparison (bit-identity + zero-alloc
# walk), the envelope-ordered k-NN harness (ordering on/off bit-identity +
# conservation law), and the result-cache/serving-under-load harness
# (zero-work hit path, cached-vs-uncached bit-identity under interleaved
# writes, real 429 shedding through an HTTP server), the WAL crash-simulation
# suite (torn tail, corrupt middle record, duplicate replay — each recovered
# state compared record-for-record against a never-crashed database), and the
# WAL write-path smoke with its kill-and-reopen acked-loss check.
ci: fmt vet build race test-no-mmap fuzz-smoke metrics-smoke bench-shards-smoke bench-cascade-smoke bench-refine-smoke bench-flat-smoke bench-knn-smoke bench-cache-smoke crash-tests bench-wal-smoke

# The flat-engine packages once more with TWSIM_NO_MMAP=1: every snapshot
# open goes through the eager read-and-checksum fallback instead of the
# mmap path, so both Load flavors stay green on every CI run.
test-no-mmap:
	TWSIM_NO_MMAP=1 $(GO) test ./internal/flatidx ./internal/core .

# Short coverage-guided fuzz passes over the ordering oracles: the deque
# envelope vs the quadratic reference, the lower-bound chain
# LB_Keogh <= LB_Improved <= BandDistance with BandDistance >= Distance,
# the flat-slab codec, and the mmap snapshot loader (hostile files must
# error out or load into an index that walks without faulting).
# Go permits one fuzz target per -fuzz run, so each gets its own pass.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz='^FuzzEnvelopeDeque$$' -fuzztime=5s ./internal/dtw
	$(GO) test -run=^$$ -fuzz='^FuzzBandedBoundChain$$' -fuzztime=5s ./internal/dtw
	$(GO) test -run=^$$ -fuzz='^FuzzSlabRoundtrip$$' -fuzztime=5s ./internal/flatidx
	$(GO) test -run=^$$ -fuzz='^FuzzMmapLoad$$' -fuzztime=5s ./internal/flatidx

# Boots a real twsimd on an ephemeral port, drives traffic, and verifies
# GET /metrics is valid Prometheus exposition with the key series present
# (including the candidates = pruned + dtw_calls conservation law).
metrics-smoke:
	$(GO) build -o bin/twsimd ./cmd/twsimd
	$(GO) run ./cmd/metricssmoke -bin ./bin/twsimd

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Sharded query engine throughput at 1/4/GOMAXPROCS shards on the synthetic
# random-walk workload; writes BENCH_shard.json.
bench-shards:
	$(GO) run ./cmd/benchshards

# Tiny workload, no output file: proves the harness runs end to end.
bench-shards-smoke:
	$(GO) run ./cmd/benchshards -smoke >/dev/null

# Refine-cascade benchmark: DTW-call reduction, per-tier prune counts,
# kernel ns/op vs the pre-kernel baseline, and steady-state allocs/op on the
# benchshards workload plus a mixed-length variant; writes BENCH_cascade.json.
bench-cascade:
	$(GO) run ./cmd/benchcascade

# Tiny workload, no output file or kernel timings; also verifies cascade and
# baseline results are bit-identical on the smoke corpus.
bench-cascade-smoke:
	$(GO) run ./cmd/benchcascade -smoke >/dev/null

# Intra-query parallel refinement + decoded-sequence cache: qps/latency and
# pool/cache hit rates at 1/2/4/GOMAXPROCS refine workers on the benchshards
# workload; writes BENCH_refine.json.
bench-refine:
	$(GO) run ./cmd/benchrefine

# Tiny workload, no output file; also verifies every worker budget's results
# are bit-identical to the serial baseline on the smoke corpus.
bench-refine-smoke:
	$(GO) run ./cmd/benchrefine -smoke >/dev/null

# Flat-engine vs Guttman R-tree: raw filter-walk ns/op (with the 1.3x
# speedup fence and the zero-allocation steady-state check) plus end-to-end
# qps per engine at GOMAXPROCS=1 and full width, with bit-identity between
# engines enforced; writes BENCH_flat.json.
bench-flat:
	$(GO) run ./cmd/benchflat

# Tiny workload, no output file; keeps the alloc check and bit-identity
# verification, relaxes the speedup fence (smoke sizes are noise-bound).
bench-flat-smoke:
	$(GO) run ./cmd/benchflat -smoke >/dev/null

# Envelope-ordered k-NN: exact DTW calls, frontier pushes/re-pushes, and
# qps for k in {1,10,100} x engines {guttman,flat} x bands {0,8}, ordering
# on vs off, with on/off bit-identity and the conservation law enforced on
# every row; writes BENCH_knn.json. Full mode fails unless ordering cuts
# exact DTW calls by >= 30% at k=10 band=8 on both engines.
bench-knn:
	$(GO) run ./cmd/benchknn

# Tiny workload, no output file; keeps bit-identity and conservation
# checks, skips the reduction fence (smoke sizes are noise-bound).
bench-knn-smoke:
	$(GO) run ./cmd/benchknn -smoke >/dev/null

# Result cache + serving under load: cold-vs-hot query latency (with the
# 10x hot-hit fence and the zero-work hit check), hit ratio under a Zipf
# query mix with interleaved writes (cached results verified bit-identical
# against an uncached twin), and an overload leg through a real HTTP
# server with admission limits (accepted p50/p99, 429 counts); writes
# BENCH_cache.json.
bench-cache:
	$(GO) run ./cmd/benchcache

# Tiny workload, no output file; keeps the zero-work hit check, the
# bit-identity verification, and the 429 shedding check, skips the 10x
# latency fence (smoke sizes are noise-bound).
bench-cache-smoke:
	$(GO) run ./cmd/benchcache -smoke >/dev/null

# Group-commit WAL write path: acknowledge p50/p99, throughput, and
# fsyncs-per-op at 1/4/16 concurrent writers, WAL on vs off, plus a
# copy-dir kill-and-reopen check that no acknowledged write is lost;
# writes BENCH_wal.json. Full mode fails unless 16 writers amortize to
# under one fsync per write and the 16-writer p99 stays within the flush
# interval plus a calibrated fsync allowance.
bench-wal:
	$(GO) run ./cmd/benchwal

# Tiny workload, no output file; keeps the kill-and-reopen acked-loss
# check, skips the latency/fsync fences (smoke sizes are noise-bound).
bench-wal-smoke:
	$(GO) run ./cmd/benchwal -smoke >/dev/null

# The WAL crash-simulation suite on its own: torn final record, CRC-corrupt
# middle record, duplicate replay after a mid-checkpoint crash, plus the
# injected directory-fsync failure — each recovered database compared
# record-for-record and query-for-query against a never-crashed twin.
crash-tests:
	$(GO) test -run 'TestCrash|TestDirSync' .
