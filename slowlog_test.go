package twsim_test

import (
	"bytes"
	"fmt"
	"log"
	"strings"
	"sync"
	"testing"

	twsim "repro"
)

// syncBuffer is a goroutine-safe bytes.Buffer; SearchBatch workers finish
// before the batch logs, but the sharded engine may log from fan-out paths.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func seedSlowLogDB(t *testing.T, db twsim.Backend) {
	t.Helper()
	for i := 0; i < 16; i++ {
		base := float64(i % 4)
		if _, err := db.Add([]float64{base, base + 1, base + 2, base + 1}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSlowQueryLog: with a 1ns threshold every query logs one flat
// key=value line whose request_id matches the RequestID stamped on the
// returned Result, for range searches, k-NN, and batches, on both engines.
func TestSlowQueryLog(t *testing.T) {
	engines := []struct {
		name string
		open func(t *testing.T, o twsim.Options) twsim.Backend
	}{
		{"single", func(t *testing.T, o twsim.Options) twsim.Backend {
			db, err := twsim.OpenMem(o)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}},
		{"sharded", func(t *testing.T, o twsim.Options) twsim.Backend {
			db, err := twsim.OpenMemSharded(twsim.ShardedOptions{Options: o, Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { db.Close() })
			return db
		}},
	}
	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			var buf syncBuffer
			db := eng.open(t, twsim.Options{
				SlowQueryThreshold: 1, // 1ns: every query is "slow"
				SlowQueryLogger:    log.New(&buf, "", 0),
			})
			seedSlowLogDB(t, db)
			q := []float64{1, 2, 3, 2}

			res, err := db.Search(q, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			knn, err := db.NearestKStats(q, 3)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := db.SearchBatch([][]float64{q, {0, 1, 2, 1}}, 0.5, 2)
			if err != nil {
				t.Fatal(err)
			}

			out := buf.String()
			wantLines := []struct {
				kind  string
				reqID uint64
				param string
			}{
				{"search", res.RequestID, "epsilon=0.5"},
				{"knn", knn.RequestID, "k=3"},
				{"batch", batch[0].RequestID, "epsilon=0.5"},
				{"batch", batch[1].RequestID, "epsilon=0.5"},
			}
			for _, w := range wantLines {
				if w.reqID == 0 {
					t.Errorf("kind=%s: Result.RequestID not stamped", w.kind)
					continue
				}
				needle := fmt.Sprintf("kind=%s request_id=%d", w.kind, w.reqID)
				line := ""
				for _, l := range strings.Split(out, "\n") {
					if strings.Contains(l, needle) {
						line = l
						break
					}
				}
				if line == "" {
					t.Errorf("no slow-query line %q in log:\n%s", needle, out)
					continue
				}
				for _, key := range []string{"twsim: slow query", "qlen=4", w.param, "wall=", "filter=", "refine=", "candidates=", "results=", "dtw=", "pruned_kim=", "pruned_keogh=", "pruned_yi=", "pruned_corridor="} {
					if !strings.Contains(line, key) {
						t.Errorf("slow-query line missing %q: %s", key, line)
					}
				}
			}
			// IDs are unique per query.
			seen := map[uint64]bool{}
			for _, id := range []uint64{res.RequestID, knn.RequestID, batch[0].RequestID, batch[1].RequestID} {
				if seen[id] {
					t.Errorf("request_id %d reused across queries", id)
				}
				seen[id] = true
			}
		})
	}
}

// TestSlowQueryLogDisabled: the zero threshold (the default) logs nothing,
// but results still carry request IDs.
func TestSlowQueryLogDisabled(t *testing.T) {
	var buf syncBuffer
	db, err := twsim.OpenMem(twsim.Options{SlowQueryLogger: log.New(&buf, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	seedSlowLogDB(t, db)
	res, err := db.Search([]float64{1, 2, 3, 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); out != "" {
		t.Errorf("threshold 0 logged:\n%s", out)
	}
	if res.RequestID == 0 {
		t.Error("RequestID not stamped when the slow-query log is disabled")
	}
}
