package twsim_test

import (
	"strings"
	"testing"

	twsim "repro"
)

func TestVerifyCleanDatabase(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Verify(); err != nil {
		t.Fatalf("empty db: %v", err)
	}
	if _, err := db.AddAll(randomWalks(71, 80, 5, 30)); err != nil {
		t.Fatal(err)
	}
	if err := db.Verify(); err != nil {
		t.Fatalf("populated db: %v", err)
	}
	// After removals the cross-check still holds.
	for _, id := range []twsim.ID{3, 40, 79} {
		if _, err := db.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Verify(); err != nil {
		t.Fatalf("after removals: %v", err)
	}
}

func TestVerifyAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := twsim.Create(dir, twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAll(randomWalks(72, 40, 5, 20)); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := twsim.Open(dir, twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if err := db2.Verify(); err != nil {
		t.Fatalf("after reopen: %v", err)
	}
}

func TestVerifyHealthyErrorShape(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Add([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := db.Verify(); err != nil && !strings.Contains(err.Error(), "twsim:") {
		t.Errorf("unexpected error shape: %v", err)
	}
}
