package twsim_test

import (
	"testing"

	twsim "repro"
)

func TestRemove(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	data := randomWalks(91, 50, 10, 20)
	if _, err := db.AddAll(data); err != nil {
		t.Fatal(err)
	}

	// The sequence is findable before removal...
	res, err := db.Search(data[7], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 || res.Matches[0].ID != 7 {
		t.Fatalf("pre-remove search: %+v", res.Matches)
	}

	ok, err := db.Remove(7)
	if err != nil || !ok {
		t.Fatalf("Remove = %v, %v", ok, err)
	}
	if db.Len() != 49 {
		t.Errorf("Len = %d", db.Len())
	}
	if err := db.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// ...and gone afterwards, from every method.
	res, err = db.Search(data[7], 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		if m.ID == 7 {
			t.Fatal("removed sequence still returned by index search")
		}
	}
	naive, err := db.BaselineNaiveScan().Search(data[7], 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range naive.Matches {
		if m.ID == 7 {
			t.Fatal("removed sequence still returned by scan")
		}
	}
	if _, err := db.Get(7); err == nil {
		t.Error("Get of removed sequence succeeded")
	}

	// Removing again (or a nonexistent id) reports false without error.
	ok, err = db.Remove(7)
	if err != nil || ok {
		t.Errorf("second Remove = %v, %v", ok, err)
	}
	ok, err = db.Remove(9999)
	if err != nil || ok {
		t.Errorf("Remove(9999) = %v, %v", ok, err)
	}

	// Index and scan still agree on a fresh query after removal.
	q := data[3]
	a, err := db.Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.BaselineNaiveScan().Search(q, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Matches) != len(b.Matches) {
		t.Fatalf("post-remove disagreement: %d vs %d", len(a.Matches), len(b.Matches))
	}
}

func TestRemovePersists(t *testing.T) {
	dir := t.TempDir()
	db, err := twsim.Create(dir, twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := randomWalks(92, 20, 5, 15)
	if _, err := db.AddAll(data); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Remove(4); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := twsim.Open(dir, twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != 19 {
		t.Fatalf("reopened Len = %d", db2.Len())
	}
	if _, err := db2.Get(4); err == nil {
		t.Error("removed sequence readable after reopen")
	}
	res, err := db2.Search(data[4], 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		if m.ID == 4 {
			t.Fatal("removed sequence searchable after reopen")
		}
	}
}
