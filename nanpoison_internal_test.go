package twsim

import (
	"math"
	"testing"

	"repro/internal/seq"
)

// poisonDB builds a database holding finite sequences plus one NaN-bearing
// sequence smuggled past the Add-time validation, the way the seed accepted
// it: straight into the heap and the feature index.
func poisonDB(t *testing.T) (*DB, ID) {
	t.Helper()
	db, err := OpenMem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	for _, s := range [][]float64{{5, 6, 7}, {-3, -2, -1}, {10, 10, 10}} {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	poisoned := seq.Sequence{math.NaN(), 1}
	id, err := db.store.Append(poisoned)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.index.Insert(id, poisoned); err != nil {
		t.Fatal(err)
	}
	return db, ID(id)
}

// TestNaNPoisonDivergence is the regression test for the headline bug: in
// the seed, Add accepted sequences containing NaN, and the price was two
// provably-exact search methods silently returning different answers —
// the paper's Theorem 1 equivalence broken without any error surfacing.
//
// The witness: store S = [NaN, 1] and query Q = [1]. NaN loses every
// ordered comparison, so it slips through the max-style recurrences as if
// it were −∞: the exact L∞ DTW kernel drops the NaN path cost and
// evaluates Dtw(S, Q) to the finite value 0, and the index + refine path
// agrees, reporting S as a distance-0 match. The early-abandoning kernel
// the sequential-scan baseline uses reaches the opposite verdict — in its
// DP row for the NaN element no cell can test ≤ ε, so the row looks dead
// and S is abandoned (NaN acting like +∞ this time). Same database, same
// query, same ε: one exact method returns S, the other silently does not.
//
// With the fix, that state is unreachable through the public API (Add and
// friends return ErrNonFinite; see TestNonFiniteRejected) and — should it
// arise anyway via on-disk corruption — Verify and CheckInvariants both
// flag it instead of staying silent.
func TestNaNPoisonDivergence(t *testing.T) {
	db, id := poisonDB(t)
	q := []float64{1}
	const eps = 0.5

	// The system's own exact distance says S is a match at distance 0,
	// and the index-filtered search duly returns it.
	d, err := db.Distance(id, q)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("exact Dtw = %g for the poisoned pair, want 0; the witness no longer exercises the bug", d)
	}
	res, err := db.Search(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	foundIndex := false
	for _, m := range res.Matches {
		if m.ID == id {
			foundIndex = true
		}
	}
	if !foundIndex {
		t.Fatal("index search dismissed the poisoned sequence; the divergence now runs the other way — update this test's direction, not its existence")
	}

	// The sequential-scan baseline — an exact method by contract —
	// silently dismisses the very same match: no error, just a different
	// answer than Search gave for identical inputs.
	naive, err := db.BaselineNaiveScan().Search(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range naive.Matches {
		if m.ID == id {
			t.Fatalf("naive scan matched the poisoned sequence (%+v) — the exact and abandoning kernels now agree on NaN; update this test", m)
		}
	}

	// The integrity checkers must refuse to bless the poisoned state.
	if err := db.Verify(); err == nil {
		t.Error("Verify passed on a database with a NaN-poisoned sequence")
	}
	if err := db.CheckInvariants(); err == nil {
		t.Error("CheckInvariants passed on an index with a NaN feature entry")
	}
}
