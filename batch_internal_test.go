package twsim

import (
	"testing"
)

// TestSearchBatchFastFail: once a query errors, the dispatcher must stop
// feeding the remaining queries to the workers. With parallelism 1 and the
// first query invalid, not a single valid query may execute — observable as
// zero index reads, since every executed range query touches the index
// buffer pool while the invalid query fails before reaching it.
func TestSearchBatchFastFail(t *testing.T) {
	db, err := OpenMem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 32; i++ {
		if _, err := db.Add([]float64{float64(i), float64(i + 1), float64(i + 2)}); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([][]float64, 50)
	queries[0] = nil // empty query: fails before any index access
	for i := 1; i < len(queries); i++ {
		queries[i] = []float64{1, 2, 3}
	}
	before := db.index.Stats().Reads
	if _, err := db.SearchBatch(queries, 0.5, 1); err == nil {
		t.Fatal("batch with an invalid query succeeded")
	}
	if delta := db.index.Stats().Reads - before; delta != 0 {
		t.Fatalf("dispatcher kept feeding queries after the error: %d index reads", delta)
	}
}
