package twsim

import (
	"repro/internal/core"
	"repro/internal/seq"
)

// Searcher is a whole-matching similarity search method. All methods
// constructed by this package are exact except the FastMap baseline, which
// can produce false dismissals (the paper's §3.3) and exists for
// comparison experiments.
type Searcher interface {
	Name() string
	Search(query []float64, epsilon float64) (*Result, error)
}

// searcherAdapter lifts an internal core.Searcher to the public interface.
type searcherAdapter struct {
	inner core.Searcher
}

func (a searcherAdapter) Name() string { return a.inner.Name() }

func (a searcherAdapter) Search(query []float64, epsilon float64) (*Result, error) {
	return a.inner.Search(seq.Sequence(query), epsilon)
}

// TWSimSearcher returns the paper's method as a Searcher, for side-by-side
// benchmarking against the baselines.
func (db *DB) TWSimSearcher() Searcher {
	return searcherAdapter{&core.TWSimSearch{DB: db.store, Index: db.index, Base: db.base}}
}

// BaselineNaiveScan returns the sequential-scan baseline (§3.1): full DTW
// against every stored sequence.
func (db *DB) BaselineNaiveScan() Searcher {
	return searcherAdapter{&core.NaiveScan{DB: db.store, Base: db.base}}
}

// BaselineLBScan returns Yi et al.'s LB-Scan baseline (§3.2): a sequential
// scan filtered by the O(n+m) lower bound before full DTW.
func (db *DB) BaselineLBScan() Searcher {
	return searcherAdapter{&core.LBScan{DB: db.store, Base: db.base}}
}

// STFilter is the suffix-tree method of Park et al. (§3.4): whole matching
// via a categorized generalized suffix tree, plus SearchSubsequences, the
// method's original subsequence-matching form.
type STFilter struct {
	inner *core.STFilter
}

// NewSTFilter builds the suffix-tree method over the current contents of
// the database with the given number of equal-width categories (the paper
// uses 100). Building scans the whole database and constructs a generalized
// suffix tree; sequences added afterwards are not visible.
func (db *DB) NewSTFilter(categories int) (*STFilter, error) {
	f, err := core.BuildSTFilter(db.store, db.base, categories)
	if err != nil {
		return nil, err
	}
	return &STFilter{inner: f}, nil
}

// Name implements Searcher.
func (f *STFilter) Name() string { return f.inner.Name() }

// Search implements Searcher (whole matching).
func (f *STFilter) Search(query []float64, epsilon float64) (*Result, error) {
	return f.inner.Search(seq.Sequence(query), epsilon)
}

// SearchSubsequences finds every subsequence (any offset, any length) of
// any stored sequence whose time warping distance to query is within
// epsilon — exact, via branch-and-bound suffix tree traversal.
func (f *STFilter) SearchSubsequences(query []float64, epsilon float64) (*SubseqResult, error) {
	return f.inner.SearchSubsequences(seq.Sequence(query), epsilon)
}

// BaselineSTFilter builds the suffix-tree baseline (§3.4) as a plain
// Searcher for side-by-side whole-matching benchmarks. See NewSTFilter for
// the full interface including subsequence matching.
func (db *DB) BaselineSTFilter(categories int) (Searcher, error) {
	return db.NewSTFilter(categories)
}

// AdaptiveSearcher returns the cost-based hybrid: the paper's index filter
// with refinement via per-candidate fetches or one sequential sweep,
// whichever the disk cost model predicts is cheaper. Exact either way.
func (db *DB) AdaptiveSearcher() Searcher {
	return searcherAdapter{&core.AdaptiveSearch{DB: db.store, Index: db.index, Base: db.base}}
}

// BaselineFastMap builds the FastMap method (§3.3) over the current
// contents of the database: a k-dimensional FastMap embedding under DTW,
// indexed in an R-tree. The returned Searcher CAN MISS qualifying
// sequences; it is provided to reproduce the paper's false-dismissal
// demonstration.
func (db *DB) BaselineFastMap(k int, seed int64) (Searcher, error) {
	f, err := core.BuildFastMapSearch(db.store, db.base, k, seed)
	if err != nil {
		return nil, err
	}
	return searcherAdapter{f}, nil
}
