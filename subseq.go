package twsim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/shard"
)

// SubMatch is one qualifying subsequence: a window of a stored sequence
// whose time warping distance to the query is within tolerance.
type SubMatch = core.SubMatch

// SubseqResult carries subsequence matches plus query statistics.
type SubseqResult = core.SubseqResult

// subseqSearcher is the engine behind a SubseqIndex: the single-database
// window index (core.SubseqIndex) or the sharded composite that fans out
// over per-shard window indexes and merges.
type subseqSearcher interface {
	Search(q seq.Sequence, epsilon float64) (*core.SubseqResult, error)
	NumWindows() int
	Close() error
}

// SubseqIndex supports subsequence matching, the paper's §6 extension: the
// same 4-tuple feature index built over sliding windows of the stored
// sequences instead of whole sequences, queried with the same algorithm.
// The search is exact (no false dismissal) over the indexed window set.
// Built by DB.BuildSubseqIndex or ShardedDB.BuildSubseqIndex; results are
// bit-identical across the two (modulo the sharded global-ID space).
type SubseqIndex struct {
	inner subseqSearcher
}

// BuildSubseqIndex indexes sliding windows of each length in windowLens
// over the database's current contents, advancing the window start by step
// positions (step <= 0 means 1). Sequences added to the database afterwards
// are not visible to the returned index.
func (db *DB) BuildSubseqIndex(windowLens []int, step int) (*SubseqIndex, error) {
	inner, err := core.BuildSubseqIndex(db.store, db.base, windowLens, step)
	if err != nil {
		return nil, err
	}
	return &SubseqIndex{inner: inner}, nil
}

// BuildSubseqIndex builds one window index per shard (fanned out on the
// engine's worker pool, each under its shard's read lock) and composes them
// behind one SubseqIndex: searches fan out the same way, per-shard matches
// have their source IDs lifted to the global space, and the merged list is
// re-sorted by (distance, ID, offset) — bit-identical to the single-DB
// index over the same logical contents.
func (s *ShardedDB) BuildSubseqIndex(windowLens []int, step int) (*SubseqIndex, error) {
	inners := make([]*core.SubseqIndex, len(s.dbs))
	err := s.eng.FanOutRead(func(si int) error {
		inner, err := core.BuildSubseqIndex(s.dbs[si].store, s.dbs[si].base, windowLens, step)
		if err != nil {
			return fmt.Errorf("twsim: shard %d: %w", si, err)
		}
		inners[si] = inner
		return nil
	})
	if err != nil {
		for _, in := range inners {
			if in != nil {
				in.Close()
			}
		}
		return nil, err
	}
	return &SubseqIndex{inner: &shardedSubseq{eng: s.eng, inners: inners}}, nil
}

// shardedSubseq fans a subsequence search out across per-shard window
// indexes and merges the partial results into the global ID space.
type shardedSubseq struct {
	eng    *shard.Engine
	inners []*core.SubseqIndex
}

func (ss *shardedSubseq) Search(q seq.Sequence, epsilon float64) (*core.SubseqResult, error) {
	start := time.Now()
	perShard := make([]*core.SubseqResult, len(ss.inners))
	err := ss.eng.FanOutRead(func(si int) error {
		r, err := ss.inners[si].Search(q, epsilon)
		if err != nil {
			return fmt.Errorf("twsim: shard %d: %w", si, err)
		}
		perShard[si] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &core.SubseqResult{}
	for si, r := range perShard {
		for _, m := range r.Matches {
			m.ID = ss.eng.GlobalID(m.ID, si)
			out.Matches = append(out.Matches, m)
		}
		out.Stats.Add(r.Stats)
	}
	// The same order the single-DB index produces: distance, then source
	// ID, then window offset.
	sort.Slice(out.Matches, func(i, j int) bool {
		a, b := out.Matches[i], out.Matches[j]
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Offset < b.Offset
	})
	out.Stats.Results = len(out.Matches)
	out.Stats.Wall = time.Since(start)
	return out, nil
}

func (ss *shardedSubseq) NumWindows() int {
	total := 0
	for _, in := range ss.inners {
		total += in.NumWindows()
	}
	return total
}

func (ss *shardedSubseq) Close() error {
	var first error
	for _, in := range ss.inners {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Search returns every indexed window whose time warping distance to query
// is at most epsilon, sorted by distance. Queries containing NaN or ±Inf
// are rejected with ErrNonFinite (a non-finite query feature would make
// every window invisible to the index filter).
func (si *SubseqIndex) Search(query []float64, epsilon float64) (*SubseqResult, error) {
	if err := seq.CheckFinite(query); err != nil {
		return nil, err
	}
	return si.inner.Search(seq.Sequence(query), epsilon)
}

// NumWindows returns the number of indexed windows.
func (si *SubseqIndex) NumWindows() int { return si.inner.NumWindows() }

// Close releases the index.
func (si *SubseqIndex) Close() error { return si.inner.Close() }
