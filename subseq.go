package twsim

import (
	"repro/internal/core"
	"repro/internal/seq"
)

// SubMatch is one qualifying subsequence: a window of a stored sequence
// whose time warping distance to the query is within tolerance.
type SubMatch = core.SubMatch

// SubseqResult carries subsequence matches plus query statistics.
type SubseqResult = core.SubseqResult

// SubseqIndex supports subsequence matching, the paper's §6 extension: the
// same 4-tuple feature index built over sliding windows of the stored
// sequences instead of whole sequences, queried with the same algorithm.
// The search is exact (no false dismissal) over the indexed window set.
type SubseqIndex struct {
	inner *core.SubseqIndex
}

// BuildSubseqIndex indexes sliding windows of each length in windowLens
// over the database's current contents, advancing the window start by step
// positions (step <= 0 means 1). Sequences added to the database afterwards
// are not visible to the returned index.
func (db *DB) BuildSubseqIndex(windowLens []int, step int) (*SubseqIndex, error) {
	inner, err := core.BuildSubseqIndex(db.store, db.base, windowLens, step)
	if err != nil {
		return nil, err
	}
	return &SubseqIndex{inner: inner}, nil
}

// Search returns every indexed window whose time warping distance to query
// is at most epsilon, sorted by distance. Queries containing NaN or ±Inf
// are rejected with ErrNonFinite (a non-finite query feature would make
// every window invisible to the index filter).
func (si *SubseqIndex) Search(query []float64, epsilon float64) (*SubseqResult, error) {
	if err := seq.CheckFinite(query); err != nil {
		return nil, err
	}
	return si.inner.Search(seq.Sequence(query), epsilon)
}

// NumWindows returns the number of indexed windows.
func (si *SubseqIndex) NumWindows() int { return si.inner.NumWindows() }

// Close releases the index.
func (si *SubseqIndex) Close() error { return si.inner.Close() }
