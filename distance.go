package twsim

import (
	"repro/internal/dtw"
	"repro/internal/seq"
)

// Distance computes the exact time warping distance between two sequences
// of arbitrary lengths under the given base distance (the paper's
// Definition 1/2) in O(len(s)·len(q)) time and O(min) memory.
func Distance(s, q []float64, base Base) float64 {
	return dtw.Distance(seq.Sequence(s), seq.Sequence(q), base)
}

// DistanceWithin computes the time warping distance but abandons early once
// the result provably exceeds epsilon, returning ok=false in that case.
func DistanceWithin(s, q []float64, base Base, epsilon float64) (d float64, ok bool) {
	return dtw.DistanceWithin(seq.Sequence(s), seq.Sequence(q), base, epsilon)
}

// BandDistance computes the time warping distance restricted to a
// slope-normalized Sakoe–Chiba band of half-width r (r < 0 disables the
// band). A band constrains warping, so the result is ≥ Distance.
func BandDistance(s, q []float64, base Base, r int) float64 {
	return dtw.BandDistance(seq.Sequence(s), seq.Sequence(q), base, r)
}

// NormalizedDistance returns the time warping distance divided by the
// optimal warping path length for additive bases (making tolerances
// comparable across lengths); for BaseLInf the distance is already
// length-independent and is returned unchanged.
func NormalizedDistance(s, q []float64, base Base) float64 {
	return dtw.NormalizedDistance(seq.Sequence(s), seq.Sequence(q), base)
}

// ItakuraDistance computes the time warping distance restricted to the
// Itakura parallelogram (global path slope within [1/2, 2]). The result is
// ≥ Distance and +Inf when the length ratio admits no legal path.
func ItakuraDistance(s, q []float64, base Base) float64 {
	return dtw.ItakuraDistance(seq.Sequence(s), seq.Sequence(q), base)
}

// WarpingPath returns the exact time warping distance together with one
// optimal warping path as (i, j) element-mapping pairs.
func WarpingPath(s, q []float64, base Base) (float64, []PathStep) {
	d, p := dtw.DistancePath(seq.Sequence(s), seq.Sequence(q), base)
	out := make([]PathStep, len(p))
	for i, st := range p {
		out[i] = PathStep{I: st.I, J: st.J}
	}
	return d, out
}

// PathStep is one element mapping of a warping path: element I of s matched
// with element J of q.
type PathStep struct {
	I, J int
}

// LowerBound computes the paper's Dtw-lb (Definition 3, known as LB_Kim):
// the L∞ distance between the two 4-tuple feature vectors. It never exceeds
// Distance(s, q, BaseLInf) and satisfies the triangular inequality.
func LowerBound(s, q []float64) float64 {
	return dtw.LBKim(seq.Sequence(s), seq.Sequence(q))
}

// LowerBoundYi computes Yi et al.'s O(len(s)+len(q)) scan-time lower bound
// of the time warping distance (the filter of the LB-Scan baseline).
func LowerBoundYi(s, q []float64, base Base) float64 {
	return dtw.LBYi(seq.Sequence(s), seq.Sequence(q), base)
}

// Feature extracts the paper's time-warping-invariant 4-tuple
// (First, Last, Greatest, Smallest) from a non-empty sequence.
func Feature(s []float64) (first, last, greatest, smallest float64, err error) {
	f, err := seq.ExtractFeature(seq.Sequence(s))
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return f.First, f.Last, f.Greatest, f.Smallest, nil
}
