package twsim_test

import (
	"testing"

	twsim "repro"
)

func TestSearchBatchMatchesSequential(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	data := randomWalks(61, 120, 10, 30)
	if _, err := db.AddAll(data); err != nil {
		t.Fatal(err)
	}
	queries := data[:20]
	const eps = 0.3
	batch, err := db.SearchBatch(queries, eps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch returned %d results", len(batch))
	}
	for i, q := range queries {
		single, err := db.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i].Matches) != len(single.Matches) {
			t.Fatalf("query %d: batch %d matches, single %d",
				i, len(batch[i].Matches), len(single.Matches))
		}
		for j := range single.Matches {
			if batch[i].Matches[j].ID != single.Matches[j].ID {
				t.Fatalf("query %d match %d: id mismatch", i, j)
			}
		}
	}
}

func TestSearchBatchEdgeCases(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Add([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Empty batch.
	out, err := db.SearchBatch(nil, 1, 0)
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch = %v, %v", out, err)
	}
	// Negative epsilon.
	if _, err := db.SearchBatch([][]float64{{1}}, -1, 0); err == nil {
		t.Error("negative epsilon accepted")
	}
	// A bad query aborts with a useful error.
	if _, err := db.SearchBatch([][]float64{{1, 2}, nil}, 1, 2); err == nil {
		t.Error("empty query in batch accepted")
	}
	// parallelism larger than batch is fine.
	out, err = db.SearchBatch([][]float64{{1, 2, 3}}, 0.5, 64)
	if err != nil || len(out) != 1 {
		t.Fatalf("oversized parallelism: %v, %v", out, err)
	}
}

func TestCompactTo(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	data := randomWalks(62, 30, 5, 15)
	if _, err := db.AddAll(data); err != nil {
		t.Fatal(err)
	}
	for _, id := range []twsim.ID{3, 10, 20} {
		if _, err := db.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	dst, mapping, err := db.CompactTo(dir, twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if dst.Len() != 27 {
		t.Fatalf("compacted Len = %d", dst.Len())
	}
	if len(mapping) != 27 {
		t.Fatalf("mapping has %d entries", len(mapping))
	}
	if _, ok := mapping[3]; ok {
		t.Error("deleted id present in mapping")
	}
	// Every surviving sequence is intact under its new ID.
	for old, new := range mapping {
		got, err := dst.Get(new)
		if err != nil {
			t.Fatal(err)
		}
		want := data[old]
		if len(got) != len(want) {
			t.Fatalf("old %d -> new %d: length mismatch", old, new)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("old %d -> new %d: content mismatch", old, new)
			}
		}
	}
	// Search works on the compacted database and the source is untouched.
	if err := dst.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res, err := dst.Search(data[0], 0)
	if err != nil || len(res.Matches) == 0 {
		t.Fatalf("compacted search: %v, %v", res, err)
	}
	if db.Len() != 27 {
		t.Errorf("source Len changed: %d", db.Len())
	}
}
