package twsim

// Internal (same-package) test: Verify must detect a desynchronized
// heap/index pair, which cannot be produced through the public API.

import (
	"strings"
	"testing"

	"repro/internal/seq"
)

func TestVerifyDetectsMissingIndexEntry(t *testing.T) {
	db, err := OpenMem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := []float64{1, 2, 3}
	id, err := db.Add(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Add([]float64{4, 5}); err != nil {
		t.Fatal(err)
	}
	// Desynchronize: remove the index entry but leave the heap record live.
	found, err := db.index.Delete(id, seq.Sequence(s))
	if err != nil || !found {
		t.Fatalf("index delete = %v, %v", found, err)
	}
	err = db.Verify()
	if err == nil {
		t.Fatal("Verify passed on desynchronized database")
	}
	if !strings.Contains(err.Error(), "missing from index") &&
		!strings.Contains(err.Error(), "entries") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestVerifyDetectsCountMismatch(t *testing.T) {
	db, err := OpenMem(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Add([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Desynchronize the other way: an extra index entry with no heap
	// record behind it.
	if err := db.index.Insert(seq.ID(99), seq.Sequence{7, 8}); err != nil {
		t.Fatal(err)
	}
	err = db.Verify()
	if err == nil {
		t.Fatal("Verify passed with phantom index entry")
	}
	if !strings.Contains(err.Error(), "index holds") {
		t.Errorf("unhelpful error: %v", err)
	}
}
