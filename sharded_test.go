package twsim_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	twsim "repro"
)

// buildPair loads the same data into a single DB and an N-shard ShardedDB,
// returning both plus the sharded-ID → single-ID mapping (insertion order
// is the shared key: the i-th inserted sequence has single ID i).
func buildPair(t *testing.T, data [][]float64, shards int, base twsim.Base) (*twsim.DB, *twsim.ShardedDB, map[twsim.ID]twsim.ID) {
	t.Helper()
	single, err := twsim.OpenMem(twsim.Options{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { single.Close() })
	sharded, err := twsim.OpenMemSharded(twsim.ShardedOptions{
		Options: twsim.Options{Base: base},
		Shards:  shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sharded.Close() })
	mapping := make(map[twsim.ID]twsim.ID, len(data))
	for _, v := range data {
		sid, err := single.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		gid, err := sharded.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		mapping[gid] = sid
	}
	return single, sharded, mapping
}

// TestShardedSearchOracle: for randomized datasets and tolerances, the
// sharded range search returns exactly the single-database result (IDs
// modulo the mapping, distances bitwise equal) for every base distance and
// shard count.
func TestShardedSearchOracle(t *testing.T) {
	bases := map[string]twsim.Base{"linf": twsim.BaseLInf, "l1": twsim.BaseL1, "l2sq": twsim.BaseL2Sq}
	for _, shards := range []int{1, 3, 8} {
		for name, base := range bases {
			t.Run(fmt.Sprintf("shards=%d/%s", shards, name), func(t *testing.T) {
				data := randomWalks(int64(shards)*100+7, 90, 12, 40)
				single, sharded, mapping := buildPair(t, data, shards, base)
				rng := rand.New(rand.NewSource(int64(shards) + 13))
				for trial := 0; trial < 12; trial++ {
					q := data[rng.Intn(len(data))]
					eps := rng.Float64() * 2
					want, err := single.Search(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sharded.Search(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					if len(got.Matches) != len(want.Matches) {
						t.Fatalf("trial %d: sharded %d matches, single %d",
							trial, len(got.Matches), len(want.Matches))
					}
					for i, m := range got.Matches {
						w := want.Matches[i]
						if mapping[m.ID] != w.ID || m.Dist != w.Dist {
							t.Fatalf("trial %d match %d: sharded (id %d -> %d, dist %g), single (id %d, dist %g)",
								trial, i, m.ID, mapping[m.ID], m.Dist, w.ID, w.Dist)
						}
					}
					if got.Stats.Results != len(got.Matches) {
						t.Fatalf("trial %d: merged stats report %d results, have %d",
							trial, got.Stats.Results, len(got.Matches))
					}
				}
			})
		}
	}
}

// TestShardedNearestKOracle: the merged k-NN across shards (with the shared
// best-k bound pruning laggard shards) equals the single-database answer.
func TestShardedNearestKOracle(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			data := randomWalks(int64(shards)*57+3, 80, 10, 35)
			single, sharded, mapping := buildPair(t, data, shards, twsim.BaseLInf)
			rng := rand.New(rand.NewSource(int64(shards) * 31))
			for _, k := range []int{1, 3, 10, 80, 200} {
				q := data[rng.Intn(len(data))]
				want, err := single.NearestK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sharded.NearestK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("k=%d: sharded %d matches, single %d", k, len(got), len(want))
				}
				for i := range got {
					if mapping[got[i].ID] != want[i].ID || got[i].Dist != want[i].Dist {
						t.Fatalf("k=%d rank %d: sharded (id %d -> %d, dist %g), single (id %d, dist %g)",
							k, i, got[i].ID, mapping[got[i].ID], got[i].Dist, want[i].ID, want[i].Dist)
					}
				}
			}
		})
	}
}

// TestShardedBatchOracle: AddBatch distributes across shards and
// SearchBatch merges per-query exactly like individual Search calls.
func TestShardedBatchOracle(t *testing.T) {
	data := randomWalks(99, 70, 10, 30)
	sharded, err := twsim.OpenMemSharded(twsim.ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	ids, err := sharded.AddBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(data) {
		t.Fatalf("AddBatch returned %d ids for %d sequences", len(ids), len(data))
	}
	for i, id := range ids {
		got, err := sharded.Get(id)
		if err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
		if len(got) != len(data[i]) || got[0] != data[i][0] {
			t.Fatalf("sequence %d: round-trip mismatch", i)
		}
		if want := int(id) % sharded.NumShards(); sharded.ShardID(id) != want {
			t.Fatalf("ShardID(%d) = %d, want %d", id, sharded.ShardID(id), want)
		}
	}
	queries := data[:15]
	const eps = 0.4
	batch, err := sharded.SearchBatch(queries, eps, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want, err := sharded.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i].Matches) != len(want.Matches) {
			t.Fatalf("query %d: batch %d matches, single %d", i, len(batch[i].Matches), len(want.Matches))
		}
		for j := range want.Matches {
			if batch[i].Matches[j] != want.Matches[j] {
				t.Fatalf("query %d match %d differs", i, j)
			}
		}
	}
}

// TestShardedPartitionerDeterminism: the ID routing survives Close/Open —
// every sequence is still fetchable under its old ID, removed sequences
// stay gone, and searches still agree with a single-database oracle.
func TestShardedPartitionerDeterminism(t *testing.T) {
	dir := t.TempDir()
	const shards = 3
	data := randomWalks(41, 60, 10, 30)
	sdb, err := twsim.CreateSharded(dir, twsim.ShardedOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	// Mix single adds and a batch so both placement paths are exercised.
	var ids []twsim.ID
	for _, v := range data[:20] {
		id, err := sdb.Add(v)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	batchIDs, err := sdb.AddBatch(data[20:])
	if err != nil {
		t.Fatal(err)
	}
	ids = append(ids, batchIDs...)
	removed := map[twsim.ID]bool{ids[3]: true, ids[25]: true, ids[47]: true}
	for id := range removed {
		ok, err := sdb.Remove(id)
		if err != nil || !ok {
			t.Fatalf("Remove(%d) = %v, %v", id, ok, err)
		}
	}
	shardOf := make(map[twsim.ID]int, len(ids))
	for _, id := range ids {
		shardOf[id] = sdb.ShardID(id)
	}
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}

	if !twsim.IsSharded(dir) {
		t.Fatal("IsSharded = false for a sharded directory")
	}
	reopened, err := twsim.OpenSharded(dir, twsim.ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if rs := reopened.LastRepair(); rs.Repaired() {
		t.Fatalf("clean reopen reported repair: %+v", rs)
	}
	if reopened.NumShards() != shards {
		t.Fatalf("reopened with %d shards, want %d", reopened.NumShards(), shards)
	}
	if got, want := reopened.Len(), len(ids)-len(removed); got != want {
		t.Fatalf("reopened Len = %d, want %d", got, want)
	}
	for i, id := range ids {
		if reopened.ShardID(id) != shardOf[id] {
			t.Fatalf("ShardID(%d) changed across reopen: %d -> %d", id, shardOf[id], reopened.ShardID(id))
		}
		values, err := reopened.Get(id)
		if removed[id] {
			if err == nil {
				t.Fatalf("removed sequence %d still fetchable", id)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Get(%d): %v", id, err)
		}
		if len(values) != len(data[i]) || values[len(values)-1] != data[i][len(data[i])-1] {
			t.Fatalf("sequence %d: values changed across reopen", i)
		}
	}
	if err := reopened.Verify(); err != nil {
		t.Fatalf("Verify after reopen: %v", err)
	}

	// Searches on the reopened database still match a fresh single-DB
	// oracle over the surviving sequences.
	single, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	surviving := make(map[twsim.ID]twsim.ID) // sharded ID -> oracle ID
	for i, id := range ids {
		if removed[id] {
			continue
		}
		oid, err := single.Add(data[i])
		if err != nil {
			t.Fatal(err)
		}
		surviving[id] = oid
	}
	for trial := 0; trial < 5; trial++ {
		q := data[trial*7]
		want, err := single.Search(q, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := reopened.Search(q, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Matches) != len(want.Matches) {
			t.Fatalf("trial %d: reopened %d matches, oracle %d", trial, len(got.Matches), len(want.Matches))
		}
		for i := range got.Matches {
			if surviving[got.Matches[i].ID] != want.Matches[i].ID || got.Matches[i].Dist != want.Matches[i].Dist {
				t.Fatalf("trial %d match %d differs", trial, i)
			}
		}
	}
}

// TestOpenShardedCountMismatch: the shard count is pinned at creation.
func TestOpenShardedCountMismatch(t *testing.T) {
	dir := t.TempDir()
	sdb, err := twsim.CreateSharded(dir, twsim.ShardedOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := twsim.OpenSharded(dir, twsim.ShardedOptions{Shards: 2}); err == nil {
		t.Fatal("OpenSharded with a conflicting shard count succeeded")
	}
	if _, err := twsim.OpenSharded(t.TempDir(), twsim.ShardedOptions{}); err == nil {
		t.Fatal("OpenSharded on a non-sharded directory succeeded")
	}
}

// TestShardedConcurrentStorm hammers a sharded database with concurrent
// per-shard writers and fan-out readers; run under -race it checks the
// per-shard locking discipline, and afterwards the contents must verify.
func TestShardedConcurrentStorm(t *testing.T) {
	sdb, err := twsim.OpenMemSharded(twsim.ShardedOptions{Shards: 4, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	seedData := randomWalks(7, 40, 10, 24)
	if _, err := sdb.AddBatch(seedData); err != nil {
		t.Fatal(err)
	}

	const (
		writers   = 4
		readers   = 4
		opsPerG   = 30
		removeMod = 5
	)
	errs := make(chan error, writers+readers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			walks := randomWalks(seed, opsPerG, 8, 20)
			var mine []twsim.ID
			for i, v := range walks {
				id, err := sdb.Add(v)
				if err != nil {
					errs <- fmt.Errorf("writer add: %w", err)
					return
				}
				mine = append(mine, id)
				if i%removeMod == removeMod-1 {
					if _, err := sdb.Remove(mine[len(mine)/2]); err != nil {
						errs <- fmt.Errorf("writer remove: %w", err)
						return
					}
				}
			}
		}(int64(1000 + w))
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerG; i++ {
				q := seedData[rng.Intn(len(seedData))]
				switch i % 3 {
				case 0:
					if _, err := sdb.Search(q, rng.Float64()); err != nil {
						errs <- fmt.Errorf("reader search: %w", err)
						return
					}
				case 1:
					if _, err := sdb.NearestK(q, 5); err != nil {
						errs <- fmt.Errorf("reader knn: %w", err)
						return
					}
				default:
					sdb.Len()
					if _, err := sdb.Get(twsim.ID(rng.Intn(len(seedData)))); err != nil {
						// Concurrent removal makes misses legitimate; only
						// report nothing — Get errors here are expected.
						_ = err
					}
				}
			}
		}(int64(2000 + r))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := sdb.Verify(); err != nil {
		t.Fatalf("Verify after storm: %v", err)
	}
}
