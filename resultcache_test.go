package twsim_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	twsim "repro"
)

// cacheBackend abstracts the two engines for the coherence tests. mu
// serializes writers against reader pairs: the single-DB engine needs it
// by the library's concurrency rule, and the sharded engine (internally
// safe) uses it so a cached read and its fresh recompute observe the same
// contents.
type cacheBackend struct {
	mu sync.RWMutex
	b  twsim.Backend
}

func openCacheBackends(t *testing.T, cacheBytes int64) map[string]*cacheBackend {
	t.Helper()
	opts := twsim.Options{ResultCacheBytes: cacheBytes}
	single, err := twsim.OpenMem(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { single.Close() })
	sharded, err := twsim.OpenMemSharded(twsim.ShardedOptions{Options: opts, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sharded.Close() })
	return map[string]*cacheBackend{
		"single":  {b: single},
		"sharded": {b: sharded},
	}
}

// TestResultCacheHit: a repeated query answers from the cache — flagged,
// bit-identical matches, zero work counters — and the knn and range kinds
// do not collide.
func TestResultCacheHit(t *testing.T) {
	for name, cb := range openCacheBackends(t, 1<<20) {
		t.Run(name, func(t *testing.T) {
			data := randomWalks(77, 40, 12, 24)
			if _, err := cb.b.AddBatch(data); err != nil {
				t.Fatal(err)
			}
			q := data[3]
			cold, err := cb.b.SearchCtx(nil, q, 0.5, 0)
			if err != nil {
				t.Fatal(err)
			}
			if cold.CacheHit {
				t.Fatal("first query reported a cache hit")
			}
			hot, err := cb.b.SearchCtx(nil, q, 0.5, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !hot.CacheHit {
				t.Fatal("repeat query missed the cache")
			}
			if !matchesEqual(cold.Matches, hot.Matches) {
				t.Fatal("cached matches differ from cold matches")
			}
			if hot.Stats.DTWCalls != 0 || hot.Stats.Candidates != 0 || hot.Stats.LowerBoundCalls != 0 {
				t.Fatalf("cache hit did index work: %+v", hot.Stats)
			}
			if hot.RequestID == cold.RequestID {
				t.Fatal("cache hit reused the cold query's request ID")
			}
			// A knn query with the same vector must not collide with the
			// cached range entry.
			knn, err := cb.b.NearestKCtx(nil, q, 3, 0)
			if err != nil {
				t.Fatal(err)
			}
			if knn.CacheHit {
				t.Fatal("knn query hit the range query's cache entry")
			}
			if len(knn.Matches) != 3 {
				t.Fatalf("knn returned %d matches", len(knn.Matches))
			}
			knnHot, err := cb.b.NearestKCtx(nil, q, 3, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !knnHot.CacheHit || !matchesEqual(knn.Matches, knnHot.Matches) {
				t.Fatal("repeat knn did not hit with identical matches")
			}
			st := cb.b.ResultCacheStats()
			if st.Hits < 2 || st.Misses < 2 {
				t.Fatalf("cache stats = %+v, want >= 2 hits and misses", st)
			}
		})
	}
}

// TestResultCacheWriteInvalidation: any write (add, remove) makes the next
// identical query recompute rather than serve the stale entry.
func TestResultCacheWriteInvalidation(t *testing.T) {
	for name, cb := range openCacheBackends(t, 1<<20) {
		t.Run(name, func(t *testing.T) {
			data := randomWalks(78, 30, 12, 24)
			ids, err := cb.b.AddBatch(data)
			if err != nil {
				t.Fatal(err)
			}
			q := data[0]
			before, err := cb.b.SearchCtx(nil, q, 0.8, 0)
			if err != nil {
				t.Fatal(err)
			}
			// Insert an exact duplicate of the query: it must appear in the
			// next result at distance 0.
			dupID, err := cb.b.Add(q)
			if err != nil {
				t.Fatal(err)
			}
			after, err := cb.b.SearchCtx(nil, q, 0.8, 0)
			if err != nil {
				t.Fatal(err)
			}
			if after.CacheHit {
				t.Fatal("query after a write served the stale cache entry")
			}
			found := false
			for _, m := range after.Matches {
				if m.ID == dupID && m.Dist == 0 {
					found = true
				}
			}
			if !found {
				t.Fatal("inserted duplicate missing from post-write result")
			}
			if len(after.Matches) != len(before.Matches)+1 {
				t.Fatalf("post-write result has %d matches, want %d", len(after.Matches), len(before.Matches)+1)
			}
			// Warm the cache again, remove the duplicate, and re-query.
			if _, err := cb.b.SearchCtx(nil, q, 0.8, 0); err != nil {
				t.Fatal(err)
			}
			if ok, err := cb.b.Remove(dupID); err != nil || !ok {
				t.Fatalf("Remove = %v, %v", ok, err)
			}
			final, err := cb.b.SearchCtx(nil, q, 0.8, 0)
			if err != nil {
				t.Fatal(err)
			}
			if final.CacheHit {
				t.Fatal("query after a remove served the stale cache entry")
			}
			if !matchesEqual(final.Matches, before.Matches) {
				t.Fatal("post-remove result differs from the original")
			}
			if st := cb.b.ResultCacheStats(); st.Invalidations == 0 {
				t.Fatalf("no invalidations recorded: %+v", st)
			}
			_ = ids
		})
	}
}

// TestResultCacheCoherenceStorm interleaves writers (adds and removes)
// with readers issuing a small set of repeated queries on both engines.
// Each reader pairs every cached read with a fresh recompute under the
// same read lock (the batch path bypasses the cache), so any stale hit
// surfaces as a mismatch. Run with -race this also proves the cache's
// internal synchronization.
func TestResultCacheCoherenceStorm(t *testing.T) {
	for name, cb := range openCacheBackends(t, 1<<20) {
		t.Run(name, func(t *testing.T) {
			cb := cb
			seed := randomWalks(79, 20, 10, 20)
			ids, err := cb.b.AddBatch(seed)
			if err != nil {
				t.Fatal(err)
			}
			queries := seed[:4]
			stop := make(chan struct{})
			var wg sync.WaitGroup
			errs := make(chan error, 8)

			// Two writers: one adds fresh walks, one removes earlier IDs.
			var idMu sync.Mutex
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(101))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					walk := randomWalks(int64(1000+i), 1, 10, 20)[0]
					cb.mu.Lock()
					id, err := cb.b.Add(walk)
					cb.mu.Unlock()
					if err != nil {
						errs <- err
						return
					}
					idMu.Lock()
					ids = append(ids, id)
					idMu.Unlock()
					if rng.Intn(4) == 0 {
						time.Sleep(time.Microsecond)
					}
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(202))
				for {
					select {
					case <-stop:
						return
					default:
					}
					idMu.Lock()
					var victim twsim.ID
					ok := len(ids) > len(seed)
					if ok {
						i := len(seed) + rng.Intn(len(ids)-len(seed))
						victim = ids[i]
						ids = append(ids[:i], ids[i+1:]...)
					}
					idMu.Unlock()
					if !ok {
						time.Sleep(time.Microsecond)
						continue
					}
					cb.mu.Lock()
					_, err := cb.b.Remove(victim)
					cb.mu.Unlock()
					if err != nil {
						errs <- err
						return
					}
				}
			}()

			// Four readers hammering the same queries so hits are frequent.
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(300 + r)))
					for {
						select {
						case <-stop:
							return
						default:
						}
						q := queries[rng.Intn(len(queries))]
						cb.mu.RLock()
						res, err := cb.b.SearchCtx(nil, q, 0.6, 0)
						if err != nil {
							cb.mu.RUnlock()
							errs <- err
							return
						}
						// Fresh recompute under the same lock: the batch
						// path never consults the cache, so any stale hit
						// shows up as a mismatch here.
						fresh, err := cb.b.SearchBatchBand([][]float64{q}, 0.6, 0, 1)
						cb.mu.RUnlock()
						if err != nil {
							errs <- err
							return
						}
						if !matchesEqual(res.Matches, fresh[0].Matches) {
							errs <- errors.New("cached result diverged from fresh recompute (stale hit)")
							return
						}
					}
				}(r)
			}

			time.Sleep(300 * time.Millisecond)
			close(stop)
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			st := cb.b.ResultCacheStats()
			if st.Hits == 0 {
				t.Fatal("storm produced zero cache hits; test exercised nothing")
			}
			if st.Invalidations == 0 {
				t.Fatal("storm produced zero invalidations; writers were not interleaved")
			}
			if err := cb.b.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSearchCtxCancellation: a cancelled context aborts range, knn, and
// batch queries with context.Canceled instead of computing an answer, and
// an expired Options.QueryDeadline surfaces context.DeadlineExceeded. A
// live context leaves results bit-identical to the uncancelled API.
func TestSearchCtxCancellation(t *testing.T) {
	for name, cb := range openCacheBackends(t, 0) {
		t.Run(name, func(t *testing.T) {
			data := randomWalks(80, 60, 16, 32)
			if _, err := cb.b.AddBatch(data); err != nil {
				t.Fatal(err)
			}
			q := data[9]
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := cb.b.SearchCtx(ctx, q, 0.5, 0); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled SearchCtx error = %v, want context.Canceled", err)
			}
			if _, err := cb.b.NearestKCtx(ctx, q, 5, 0); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled NearestKCtx error = %v, want context.Canceled", err)
			}
			if _, err := cb.b.SearchBatchCtx(ctx, [][]float64{q}, 0.5, 0, 1); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled SearchBatchCtx error = %v, want context.Canceled", err)
			}
			// A live context is inert: results equal the non-ctx API's.
			want, err := cb.b.SearchBand(q, 0.5, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cb.b.SearchCtx(context.Background(), q, 0.5, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !matchesEqual(want.Matches, got.Matches) {
				t.Fatal("SearchCtx with a live context differs from SearchBand")
			}
		})
	}
}

// TestQueryDeadline: Options.QueryDeadline bounds query execution — a
// deadline far shorter than the workload aborts with
// context.DeadlineExceeded rather than running to completion.
func TestQueryDeadline(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{QueryDeadline: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	data := randomWalks(81, 200, 32, 64)
	if _, err := db.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	// Huge epsilon forces every candidate through refinement, so the
	// 1 ns deadline is checked long before the query can finish.
	_, err = db.SearchCtx(nil, data[0], 1e9, 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline query error = %v, want context.DeadlineExceeded", err)
	}
}
