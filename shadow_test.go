package twsim_test

import (
	"math"
	"math/rand"
	"testing"

	twsim "repro"
)

// TestRandomOperationsShadowModel interleaves Add, Remove, Search and
// NearestK against a brute-force shadow model for several hundred steps.
// This is the strongest end-to-end invariant check: after any history of
// mutations, the index answers must equal a linear scan with the exact DTW.
func TestRandomOperationsShadowModel(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(2026))
	type entry struct {
		id   twsim.ID
		vals []float64
	}
	var live []entry

	newSeq := func() []float64 {
		n := 3 + rng.Intn(20)
		s := make([]float64, n)
		s[0] = rng.Float64() * 10
		for i := 1; i < n; i++ {
			s[i] = s[i-1] + rng.Float64()*0.6 - 0.3
		}
		return s
	}

	bruteSearch := func(q []float64, eps float64) map[twsim.ID]float64 {
		out := map[twsim.ID]float64{}
		for _, e := range live {
			if d := twsim.Distance(e.vals, q, twsim.BaseLInf); d <= eps {
				out[e.id] = d
			}
		}
		return out
	}

	for step := 0; step < 600; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(live) < 3: // add
			s := newSeq()
			id, err := db.Add(s)
			if err != nil {
				t.Fatalf("step %d: Add: %v", step, err)
			}
			live = append(live, entry{id: id, vals: s})

		case op < 7: // remove a random live sequence
			i := rng.Intn(len(live))
			ok, err := db.Remove(live[i].id)
			if err != nil || !ok {
				t.Fatalf("step %d: Remove(%d) = %v, %v", step, live[i].id, ok, err)
			}
			live = append(live[:i], live[i+1:]...)

		case op < 9: // range search vs shadow
			q := newSeq()
			if rng.Intn(2) == 0 && len(live) > 0 {
				// Perturb an existing sequence so matches actually occur.
				base := live[rng.Intn(len(live))].vals
				q = append([]float64(nil), base...)
				for i := range q {
					q[i] += (rng.Float64() - 0.5) * 0.1
				}
			}
			eps := rng.Float64() * 0.8
			res, err := db.Search(q, eps)
			if err != nil {
				t.Fatalf("step %d: Search: %v", step, err)
			}
			want := bruteSearch(q, eps)
			if len(res.Matches) != len(want) {
				t.Fatalf("step %d: %d matches, shadow has %d", step, len(res.Matches), len(want))
			}
			for _, m := range res.Matches {
				d, ok := want[m.ID]
				if !ok {
					t.Fatalf("step %d: unexpected match %d", step, m.ID)
				}
				if math.Abs(d-m.Dist) > 1e-12 {
					t.Fatalf("step %d: id %d dist %g, shadow %g", step, m.ID, m.Dist, d)
				}
			}

		default: // k-NN vs shadow
			if len(live) == 0 {
				continue
			}
			q := live[rng.Intn(len(live))].vals
			k := 1 + rng.Intn(4)
			got, err := db.NearestK(q, k)
			if err != nil {
				t.Fatalf("step %d: NearestK: %v", step, err)
			}
			dists := make([]float64, 0, len(live))
			for _, e := range live {
				dists = append(dists, twsim.Distance(e.vals, q, twsim.BaseLInf))
			}
			// Partial selection of k smallest.
			for i := 0; i < len(dists); i++ {
				for j := i + 1; j < len(dists); j++ {
					if dists[j] < dists[i] {
						dists[i], dists[j] = dists[j], dists[i]
					}
				}
			}
			wantK := k
			if wantK > len(live) {
				wantK = len(live)
			}
			if len(got) != wantK {
				t.Fatalf("step %d: NearestK returned %d, want %d", step, len(got), wantK)
			}
			for i := range got {
				if math.Abs(got[i].Dist-dists[i]) > 1e-12 {
					t.Fatalf("step %d: knn pos %d dist %g, shadow %g", step, i, got[i].Dist, dists[i])
				}
			}
		}
		if step%100 == 99 {
			if err := db.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if db.Len() != len(live) {
				t.Fatalf("step %d: Len %d, shadow %d", step, db.Len(), len(live))
			}
		}
	}
}
