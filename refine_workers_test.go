package twsim_test

import (
	"math/rand"
	"testing"

	twsim "repro"
)

// TestRefineWorkersPublicOracle: every (engine, worker budget, cache)
// combination returns bit-identical Search and NearestK results to the
// serial single-database baseline, for every base distance. This is the
// end-to-end guarantee behind Options.RefineWorkers: parallel refinement,
// the striped buffer pool, and the decoded-sequence cache are pure
// performance features with zero result drift.
func TestRefineWorkersPublicOracle(t *testing.T) {
	bases := map[string]twsim.Base{"linf": twsim.BaseLInf, "l1": twsim.BaseL1, "l2sq": twsim.BaseL2Sq}
	for name, base := range bases {
		t.Run(name, func(t *testing.T) {
			data := randomWalks(307, 90, 6, 35)

			baseline, err := twsim.OpenMem(twsim.Options{Base: base, RefineWorkers: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer baseline.Close()
			if _, err := baseline.AddBatch(data); err != nil {
				t.Fatal(err)
			}

			type variant struct {
				name    string
				backend twsim.Backend
			}
			var variants []variant
			addSingle := func(vname string, opts twsim.Options) {
				opts.Base = base
				db, err := twsim.OpenMem(opts)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { db.Close() })
				if _, err := db.AddBatch(data); err != nil {
					t.Fatal(err)
				}
				variants = append(variants, variant{vname, db})
			}
			addSharded := func(vname string, opts twsim.ShardedOptions) {
				opts.Base = base
				db, err := twsim.OpenMemSharded(opts)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { db.Close() })
				if _, err := db.AddBatch(data); err != nil {
					t.Fatal(err)
				}
				variants = append(variants, variant{vname, db})
			}
			addSingle("workers=4", twsim.Options{RefineWorkers: 4})
			addSingle("workers=4+cache", twsim.Options{RefineWorkers: 4, SeqCacheBytes: 1 << 20})
			addSingle("workers=4+nocascade", twsim.Options{RefineWorkers: 4, DisableCascade: true})
			addSharded("sharded3+workers=4", twsim.ShardedOptions{Shards: 3, Options: twsim.Options{RefineWorkers: 4}})
			addSharded("sharded3+serial+cache", twsim.ShardedOptions{Shards: 3, Options: twsim.Options{RefineWorkers: 1, SeqCacheBytes: 1 << 20}})

			rng := rand.New(rand.NewSource(71))
			for trial := 0; trial < 8; trial++ {
				q := data[rng.Intn(len(data))]
				eps := rng.Float64() * 2.5
				k := 1 + rng.Intn(8)
				want, err := baseline.Search(q, eps)
				if err != nil {
					t.Fatal(err)
				}
				wantK, err := baseline.NearestK(q, k)
				if err != nil {
					t.Fatal(err)
				}
				// Repeat each variant's queries twice so the second pass runs
				// against a warm sequence cache where one is configured.
				for _, v := range variants {
					for pass := 0; pass < 2; pass++ {
						got, err := v.backend.Search(q, eps)
						if err != nil {
							t.Fatalf("%s: %v", v.name, err)
						}
						if len(got.Matches) != len(want.Matches) {
							t.Fatalf("trial %d eps %g %s pass %d: %d matches, baseline %d",
								trial, eps, v.name, pass, len(got.Matches), len(want.Matches))
						}
						for i := range want.Matches {
							if got.Matches[i] != want.Matches[i] {
								t.Fatalf("trial %d eps %g %s pass %d match %d: %+v, baseline %+v",
									trial, eps, v.name, pass, i, got.Matches[i], want.Matches[i])
							}
						}
						gotK, err := v.backend.NearestK(q, k)
						if err != nil {
							t.Fatalf("%s: %v", v.name, err)
						}
						if len(gotK) != len(wantK) {
							t.Fatalf("trial %d k=%d %s pass %d: %d results, baseline %d",
								trial, k, v.name, pass, len(gotK), len(wantK))
						}
						for i := range wantK {
							if gotK[i] != wantK[i] {
								t.Fatalf("trial %d k=%d %s pass %d rank %d: %+v, baseline %+v",
									trial, k, v.name, pass, i, gotK[i], wantK[i])
							}
						}
					}
				}
			}
		})
	}
}

// TestStorageStatsSurface: the public StorageStats snapshot reports pool
// activity on both engines, and cache counters once the cache is enabled.
func TestStorageStatsSurface(t *testing.T) {
	data := randomWalks(311, 40, 8, 20)
	db, err := twsim.OpenMem(twsim.Options{SeqCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		if _, err := db.Search(data[0], 0.4); err != nil {
			t.Fatal(err)
		}
	}
	st := db.StorageStats()
	if st.Data.Reads == 0 || st.Index.Reads == 0 {
		t.Fatalf("no pool activity recorded: %+v", st)
	}
	if st.Cache.Hits+st.Cache.Misses == 0 {
		t.Fatalf("enabled cache recorded no lookups: %+v", st.Cache)
	}

	sdb, err := twsim.OpenMemSharded(twsim.ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	if _, err := sdb.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	if _, err := sdb.Search(data[0], 0.4); err != nil {
		t.Fatal(err)
	}
	if st := sdb.StorageStats(); st.Data.Reads == 0 {
		t.Fatalf("sharded StorageStats recorded no reads: %+v", st)
	}
}
