package twsim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/seq"
)

// SearchBatch runs many whole-matching queries concurrently (the DB is safe
// for concurrent readers) and returns one Result per query, in input order.
// parallelism <= 0 selects GOMAXPROCS. The first error aborts the batch.
// Every query is validated for non-finite elements upfront (ErrNonFinite);
// each Result gets its own RequestID and slow-query log line. Queries run
// under the database's default band (Options.Band).
func (db *DB) SearchBatch(queries [][]float64, epsilon float64, parallelism int) ([]*Result, error) {
	return db.SearchBatchBand(queries, epsilon, db.opts.Band, parallelism)
}

// SearchBatchBand is SearchBatch under an explicit Sakoe–Chiba band
// half-width for this call (0 = unconstrained), overriding Options.Band.
func (db *DB) SearchBatchBand(queries [][]float64, epsilon float64, band, parallelism int) ([]*Result, error) {
	return db.SearchBatchCtx(nil, queries, epsilon, band, parallelism)
}

// SearchBatchCtx is SearchBatchBand governed by a context: once ctx is done
// the dispatcher stops feeding queries, in-flight queries abandon at their
// next candidate boundary, and the whole batch fails with the context's
// error. Options.QueryDeadline, when set, bounds the whole batch (the
// deadline is attached once, not per query). The per-query result cache is
// not consulted on the batch path — batch throughput is dominated by cold
// queries, and the per-query stamping would serialize on the cache stripes.
func (db *DB) SearchBatchCtx(ctx context.Context, queries [][]float64, epsilon float64, band, parallelism int) ([]*Result, error) {
	if epsilon < 0 {
		return nil, fmt.Errorf("twsim: negative tolerance %g", epsilon)
	}
	if err := validateBand(band); err != nil {
		return nil, err
	}
	for i, q := range queries {
		if err := seq.CheckFinite(q); err != nil {
			return nil, fmt.Errorf("twsim: query %d: %w", i, err)
		}
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	out := make([]*Result, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	ctx, cancel := db.opts.applyDeadline(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	work := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One worker per query already fills the machine; nesting
			// intra-query refine workers under that would oversubscribe.
			m := db.searcher(ctx, 1, band)
			for i := range work {
				if failed() {
					continue // drain: the batch is already doomed
				}
				res, err := m.Search(seq.Sequence(queries[i]), epsilon)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("twsim: query %d: %w", i, err)
					}
					mu.Unlock()
					continue
				}
				out[i] = res
			}
		}()
	}
	// Stop dispatching as soon as any worker records an error, so a bad
	// batch aborts promptly instead of running every remaining query.
	for i := range queries {
		if failed() {
			break
		}
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i, res := range out {
		res.RequestID = nextRequestID()
		db.opts.logSlowQuery("batch", res.RequestID, len(queries[i]), fmt.Sprintf("epsilon=%g band=%d", epsilon, band), res.Stats)
	}
	return out, nil
}

// CompactTo rewrites the live (non-deleted) sequences into a fresh database
// at dir, rebuilding the index with a bulk load. Sequence IDs are
// reassigned densely in the new database; the returned map carries
// old-ID → new-ID for every surviving sequence. The source database is not
// modified.
func (db *DB) CompactTo(dir string, opts Options) (*DB, map[ID]ID, error) {
	dst, err := Create(dir, opts)
	if err != nil {
		return nil, nil, err
	}
	mapping := make(map[ID]ID, db.store.Len())
	var values [][]float64
	var oldIDs []ID
	err = db.store.Scan(func(id seq.ID, s seq.Sequence) error {
		oldIDs = append(oldIDs, id)
		values = append(values, append([]float64(nil), s...))
		return nil
	})
	if err != nil {
		dst.Close()
		return nil, nil, err
	}
	if len(values) > 0 {
		first, err := dst.AddAll(values)
		if err != nil {
			dst.Close()
			return nil, nil, err
		}
		for i, old := range oldIDs {
			mapping[old] = first + ID(i)
		}
	}
	if err := dst.Flush(); err != nil {
		dst.Close()
		return nil, nil, err
	}
	return dst, mapping, nil
}
