package twsim_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	twsim "repro"
)

// openPair builds a guttman-engine and a flat-engine backend over the same
// options, so every query can be checked for bit-identity between engines.
// The flat engine gets a small merge threshold so background merges fire
// during the tests rather than only at Close.
func openPair(t *testing.T, base twsim.Base, workers, band int, sharded bool) (guttman, flat twsim.Backend) {
	t.Helper()
	mk := func(engine string) twsim.Backend {
		opts := twsim.Options{
			Base:               base,
			RefineWorkers:      workers,
			Band:               band,
			IndexEngine:        engine,
			FlatMergeThreshold: 32,
		}
		var b twsim.Backend
		var err error
		if sharded {
			b, err = twsim.OpenMemSharded(twsim.ShardedOptions{Options: opts, Shards: 3})
		} else {
			b, err = twsim.OpenMem(opts)
		}
		if err != nil {
			t.Fatalf("open %s backend: %v", engine, err)
		}
		return b
	}
	return mk(twsim.EngineGuttman), mk(twsim.EngineFlat)
}

func matchesEqual(a, b []twsim.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// checkIdentical runs Search, NearestK, and SearchBatch on both backends
// and demands bit-identical matches (same IDs, same float64 distances, same
// order). The engines walk different structures but answer from the same
// closed query rect and the same refinement cascade, so the match sets —
// unique by (Dist, ID) with overwhelming probability on random walks — must
// agree exactly.
func checkIdentical(t *testing.T, guttman, flat twsim.Backend, rng *rand.Rand, data [][]float64) {
	t.Helper()
	for trial := 0; trial < 6; trial++ {
		q := append([]float64(nil), data[rng.Intn(len(data))]...)
		for i := range q {
			q[i] += (rng.Float64() - 0.5) * 0.1
		}
		eps := 0.1 + rng.Float64()*0.7

		gr, err := guttman.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := flat.Search(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(gr.Matches, fr.Matches) {
			t.Fatalf("trial %d eps=%g: Search diverged: guttman %d matches, flat %d",
				trial, eps, len(gr.Matches), len(fr.Matches))
		}
		// Both engines must satisfy the conservation law independently
		// (per-tier attribution may differ: the flat engine's walk prunes
		// by envelope before the cascade sees the candidate).
		for _, r := range []*twsim.Result{gr, fr} {
			pruned := r.Stats.LBKimPruned + r.Stats.LBPAAPruned + r.Stats.LBKeoghPruned +
				r.Stats.LBYiPruned + r.Stats.LBImprovedPruned + r.Stats.CorridorPruned
			if r.Stats.Candidates != pruned+r.Stats.DTWCalls {
				t.Fatalf("trial %d: conservation law broken: candidates=%d pruned=%d dtw=%d",
					trial, r.Stats.Candidates, pruned, r.Stats.DTWCalls)
			}
		}

		k := 1 + rng.Intn(8)
		gm, err := guttman.NearestK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		fm, err := flat.NearestK(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !matchesEqual(gm, fm) {
			t.Fatalf("trial %d k=%d: NearestK diverged", trial, k)
		}
	}

	batch := make([][]float64, 5)
	for i := range batch {
		batch[i] = data[rng.Intn(len(data))]
	}
	eps := 0.4
	grs, err := guttman.SearchBatch(batch, eps, 2)
	if err != nil {
		t.Fatal(err)
	}
	frs, err := flat.SearchBatch(batch, eps, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range grs {
		if !matchesEqual(grs[i].Matches, frs[i].Matches) {
			t.Fatalf("SearchBatch query %d diverged", i)
		}
	}
}

// TestFlatEngineOracle: the flat engine must be bit-identical to the
// Guttman R-tree for Search, NearestK, and SearchBatch — across all three
// bases, both backends (DB and ShardedDB), serial and parallel refinement,
// and unbanded plus banded queries — through a lifecycle of bulk load,
// interleaved inserts and removes (crossing the merge threshold so queries
// run against snapshot+delta mixes and freshly swapped snapshots).
func TestFlatEngineOracle(t *testing.T) {
	bases := map[string]twsim.Base{"linf": twsim.BaseLInf, "l1": twsim.BaseL1, "l2sq": twsim.BaseL2Sq}
	data := randomWalks(4243, 130, 12, 40)
	extra := randomWalks(4244, 60, 12, 40)
	for name, base := range bases {
		for _, sharded := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				for _, band := range []int{0, 8} {
					label := fmt.Sprintf("%s/%s/workers%d/band%d",
						name, map[bool]string{false: "db", true: "sharded"}[sharded], workers, band)
					t.Run(label, func(t *testing.T) {
						guttman, flat := openPair(t, base, workers, band, sharded)
						defer guttman.Close()
						defer flat.Close()

						// Phase 1: bulk load (flat: STR-packed snapshot).
						for _, b := range []twsim.Backend{guttman, flat} {
							if _, err := b.AddBatch(data); err != nil {
								t.Fatal(err)
							}
						}
						rng := rand.New(rand.NewSource(99))
						checkIdentical(t, guttman, flat, rng, data)

						// Phase 2: interleaved inserts and removes, enough
						// churn to trip the 32-entry merge threshold.
						live := append([][]float64(nil), data...)
						gids, err := guttman.AddBatch(extra)
						if err != nil {
							t.Fatal(err)
						}
						fids, err := flat.AddBatch(extra)
						if err != nil {
							t.Fatal(err)
						}
						live = append(live, extra...)
						for i := 0; i < 25; i++ {
							j := rng.Intn(len(extra))
							if _, err := guttman.Remove(gids[j]); err != nil {
								t.Fatal(err)
							}
							if _, err := flat.Remove(fids[j]); err != nil {
								t.Fatal(err)
							}
						}
						checkIdentical(t, guttman, flat, rng, live)

						if got, want := flat.Len(), guttman.Len(); got != want {
							t.Fatalf("Len diverged: flat %d, guttman %d", got, want)
						}
						if err := flat.Verify(); err != nil {
							t.Fatalf("flat Verify: %v", err)
						}
					})
				}
			}
		}
	}
}

// TestFlatEngineMergesFire asserts the oracle churn actually exercises the
// background merge path (the threshold is small on purpose).
func TestFlatEngineMergesFire(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{IndexEngine: twsim.EngineFlat, FlatMergeThreshold: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	data := randomWalks(7, 80, 10, 30)
	for _, s := range data {
		if _, err := db.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st := db.IndexEngineStats()
	if st.Engine != twsim.EngineFlat {
		t.Fatalf("engine = %q, want flat", st.Engine)
	}
	// Merges run on a background goroutine; give a slow machine a moment.
	deadline := time.Now().Add(5 * time.Second)
	for st.Merges == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		st = db.IndexEngineStats()
	}
	if st.Merges == 0 {
		t.Fatal("no background merge fired despite threshold 16 and 80 inserts")
	}
	if st.Generation == 0 {
		t.Fatal("snapshot generation still 0 after merges")
	}
}

// TestFlatEnginePersistence: an on-disk flat database round-trips through
// Close/Open (the engine auto-detected from the snapshot file), survives
// snapshot corruption by rebuilding on open (with a diagnostic note), and
// keeps answering queries identically to a Guttman twin after both.
func TestFlatEnginePersistence(t *testing.T) {
	dir := t.TempDir()
	flatDir := filepath.Join(dir, "flat")
	data := randomWalks(5150, 100, 12, 40)

	db, err := twsim.Create(flatDir, twsim.Options{IndexEngine: twsim.EngineFlat})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAll(data); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(flatDir, "feature.flat")); err != nil {
		t.Fatalf("flat snapshot file not written: %v", err)
	}

	guttman, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer guttman.Close()
	if _, err := guttman.AddAll(data); err != nil {
		t.Fatal(err)
	}

	// Reopen without naming the engine: feature.flat must be auto-detected.
	db, err = twsim.Open(flatDir, twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.IndexEngineStats().Engine; got != twsim.EngineFlat {
		t.Fatalf("auto-detected engine = %q, want flat", got)
	}
	rng := rand.New(rand.NewSource(11))
	checkIdentical(t, guttman, db, rng, data)
	if err := db.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the snapshot payload; the CRC must catch it and Open must
	// rebuild from the heap, noting the repair. The mmap open path defers
	// body checks past Open (lazy CRC, caught by Verify instead), so pin
	// this half to the eager fallback reader.
	t.Setenv("TWSIM_NO_MMAP", "1")
	snapPath := filepath.Join(flatDir, "feature.flat")
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err = twsim.Open(flatDir, twsim.Options{})
	if err != nil {
		t.Fatalf("open after corruption: %v", err)
	}
	defer db.Close()
	if !db.LastRepair().Rebuilt {
		t.Fatal("corrupted snapshot did not trigger rebuild-on-open")
	}
	if notes := db.OpenDiagnostics(); len(notes) == 0 {
		t.Fatal("rebuild-on-open left no open diagnostic")
	}
	checkIdentical(t, guttman, db, rng, data)
	if err := db.Verify(); err != nil {
		t.Fatalf("Verify after rebuild: %v", err)
	}
}

// TestFlatEngineExplicitMismatchRebuilds: naming the flat engine over a
// database created with the Guttman engine must not fail — the flat index
// is rebuilt from the heap (the source of truth) and the stale R-tree file
// removed, so auto-detection is unambiguous afterwards.
func TestFlatEngineSwitchFromGuttman(t *testing.T) {
	dir := t.TempDir()
	data := randomWalks(61, 50, 10, 30)
	db, err := twsim.Create(dir, twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.AddAll(data); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = twsim.Open(dir, twsim.Options{IndexEngine: twsim.EngineFlat})
	if err != nil {
		t.Fatalf("open guttman db with flat engine: %v", err)
	}
	defer db.Close()
	if got := db.IndexEngineStats().Engine; got != twsim.EngineFlat {
		t.Fatalf("engine = %q, want flat", got)
	}
	res, err := db.Search(data[0], 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 || res.Matches[0].ID != 0 {
		t.Fatalf("self-query missed after engine switch: %v", res.Matches)
	}
	if err := db.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestFlatEngineStorm races concurrent searches, k-NN walks, writers, and
// removers over a flat ShardedDB whose tiny merge threshold keeps
// background snapshot swaps happening throughout. Run with -race this is
// the library-level proof that readers never lock and never see a torn
// tree.
func TestFlatEngineStorm(t *testing.T) {
	db, err := twsim.OpenMemSharded(twsim.ShardedOptions{
		Options: twsim.Options{IndexEngine: twsim.EngineFlat, FlatMergeThreshold: 16},
		Shards:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := randomWalks(8080, 120, 10, 30)
	ids, err := db.AddBatch(data)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	fail := make(chan error, 8)

	// Two query workers: range search + k-NN, fixed iteration counts so the
	// storm terminates on its own.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 120; i++ {
				q := data[rng.Intn(len(data))]
				if _, err := db.Search(q, 0.3); err != nil {
					fail <- err
					return
				}
				if _, err := db.NearestK(q, 3); err != nil {
					fail <- err
					return
				}
			}
		}(int64(w))
	}
	// One writer, one remover (of the writer's own IDs via a channel).
	written := make(chan twsim.ID, 256)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 400; i++ {
			id, err := db.Add(data[rng.Intn(len(data))])
			if err != nil {
				fail <- err
				return
			}
			if i%2 == 0 {
				select {
				case written <- id:
				default:
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 150; i++ {
			var id twsim.ID
			select {
			case id = <-written:
			default:
				id = ids[rng.Intn(len(ids))]
			}
			if _, err := db.Remove(id); err != nil {
				fail <- err
				return
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
	if err := db.Verify(); err != nil {
		t.Fatalf("Verify after storm: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}
