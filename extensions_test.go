package twsim_test

import (
	"math"
	"testing"

	twsim "repro"
)

func TestItakuraDistancePublic(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	q := []float64{1, 2, 3, 4, 5}
	if d := twsim.ItakuraDistance(s, q, twsim.BaseLInf); d != 0 {
		t.Errorf("self distance = %g", d)
	}
	// The constraint can only increase the distance.
	data := randomWalks(93, 20, 8, 16)
	for i := 0; i+1 < len(data); i += 2 {
		full := twsim.Distance(data[i], data[i+1], twsim.BaseLInf)
		it := twsim.ItakuraDistance(data[i], data[i+1], twsim.BaseLInf)
		if it < full-1e-9 {
			t.Fatalf("Itakura %g < unconstrained %g", it, full)
		}
	}
	// Extreme length ratios are infeasible.
	if d := twsim.ItakuraDistance([]float64{1}, []float64{1, 1, 1, 1, 1}, twsim.BaseLInf); !math.IsInf(d, 1) {
		t.Errorf("1v5 = %g, want +Inf", d)
	}
}

func TestSTFilterSubsequencePublic(t *testing.T) {
	db, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Recordings with a shared motif at known places.
	motif := []float64{4, 9, 4}
	recs := [][]float64{
		{1, 1, 4, 9, 4, 1, 1},
		{2, 2, 2, 2, 4, 9, 4},
		{5, 5, 5, 5, 5, 5, 5},
	}
	if _, err := db.AddAll(recs); err != nil {
		t.Fatal(err)
	}
	stf, err := db.NewSTFilter(500)
	if err != nil {
		t.Fatal(err)
	}
	if stf.Name() != "ST-Filter" {
		t.Errorf("Name = %q", stf.Name())
	}
	res, err := stf.SearchSubsequences(motif, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	found := map[[2]int]bool{}
	for _, m := range res.Matches {
		if m.Len == 3 && m.Dist <= 0.05 {
			found[[2]int{int(m.ID), m.Offset}] = true
		}
	}
	for _, want := range [][2]int{{0, 2}, {1, 4}} {
		if !found[want] {
			t.Errorf("motif occurrence %v missing (found %v)", want, found)
		}
	}
	for k := range found {
		if k[0] == 2 {
			t.Errorf("motif reported in flat recording: %v", k)
		}
	}
	// Whole matching through the same object agrees with the index.
	whole, err := stf.Search(recs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole.Matches) != 1 || whole.Matches[0].ID != 0 {
		t.Errorf("whole matching via STFilter: %+v", whole.Matches)
	}
}

func TestNormalizedDistancePublic(t *testing.T) {
	s := []float64{1, 1, 1, 1}
	q := []float64{2, 2}
	raw := twsim.Distance(s, q, twsim.BaseL1)
	norm := twsim.NormalizedDistance(s, q, twsim.BaseL1)
	if norm >= raw {
		t.Errorf("normalized %g not below raw %g", norm, raw)
	}
	if got := twsim.NormalizedDistance(s, s, twsim.BaseLInf); got != 0 {
		t.Errorf("self = %g", got)
	}
}
