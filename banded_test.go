package twsim_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	twsim "repro"
)

// bandedBrute is the no-false-dismissal oracle for the banded query mode: a
// linear scan computing the exact banded distance for every live sequence,
// sorted the way Search reports matches (distance, then ID).
func bandedBrute(data [][]float64, ids []twsim.ID, q []float64, base twsim.Base, eps float64, band int) []twsim.Match {
	var out []twsim.Match
	for i, s := range data {
		if d := twsim.BandDistance(s, q, base, band); d <= eps {
			out = append(out, twsim.Match{ID: ids[i], Dist: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TestBandedSearchMatchesBruteForce: a banded index search must be
// bit-identical to the brute-force banded scan — across all three bases,
// both engines (single DB and ShardedDB), and serial vs parallel
// refinement. This is the tentpole soundness claim: every cascade tier
// lower-bounds BandDistance, so no banded match is ever dismissed.
func TestBandedSearchMatchesBruteForce(t *testing.T) {
	bases := map[string]twsim.Base{"linf": twsim.BaseLInf, "l1": twsim.BaseL1, "l2sq": twsim.BaseL2Sq}
	data := randomWalks(2027, 120, 12, 40)
	for name, base := range bases {
		for _, workers := range []int{1, 4} {
			for _, sharded := range []bool{false, true} {
				label := name + map[bool]string{false: "/db", true: "/sharded"}[sharded]
				if workers != 1 {
					label += "/workers4"
				}
				t.Run(label, func(t *testing.T) {
					opts := twsim.Options{Base: base, RefineWorkers: workers}
					var db twsim.Backend
					var err error
					if sharded {
						db, err = twsim.OpenMemSharded(twsim.ShardedOptions{Options: opts, Shards: 3})
					} else {
						db, err = twsim.OpenMem(opts)
					}
					if err != nil {
						t.Fatal(err)
					}
					defer db.Close()
					ids, err := db.AddBatch(data)
					if err != nil {
						t.Fatal(err)
					}
					rng := rand.New(rand.NewSource(31))
					for trial := 0; trial < 8; trial++ {
						q := append([]float64(nil), data[rng.Intn(len(data))]...)
						for i := range q {
							q[i] += (rng.Float64() - 0.5) * 0.1
						}
						eps := 0.1 + rng.Float64()*0.6
						band := 1 + rng.Intn(6)
						want := bandedBrute(data, ids, q, base, eps, band)
						res, err := db.SearchBand(q, eps, band)
						if err != nil {
							t.Fatal(err)
						}
						if len(res.Matches) != len(want) {
							t.Fatalf("trial %d eps=%g band=%d: index %d matches, brute force %d",
								trial, eps, band, len(res.Matches), len(want))
						}
						for i := range want {
							if res.Matches[i] != want[i] {
								t.Fatalf("trial %d match %d: index %+v, brute force %+v",
									trial, i, res.Matches[i], want[i])
							}
						}
						// The conservation law must hold tier by tier under a band.
						st := res.Stats
						pruned := st.LBKimPruned + st.LBPAAPruned + st.LBKeoghPruned +
							st.LBYiPruned + st.LBImprovedPruned + st.CorridorPruned
						if pruned+st.DTWCalls != st.Candidates {
							t.Fatalf("trial %d: pruned %d + dtw %d != candidates %d",
								trial, pruned, st.DTWCalls, st.Candidates)
						}
					}
				})
			}
		}
	}
}

// TestNearestKBandMatchesBruteForce: banded k-NN against the brute-force
// banded top-k, on both engines.
func TestNearestKBandMatchesBruteForce(t *testing.T) {
	data := randomWalks(2029, 90, 10, 30)
	for _, sharded := range []bool{false, true} {
		name := map[bool]string{false: "db", true: "sharded"}[sharded]
		t.Run(name, func(t *testing.T) {
			var db twsim.Backend
			var err error
			if sharded {
				db, err = twsim.OpenMemSharded(twsim.ShardedOptions{Shards: 3})
			} else {
				db, err = twsim.OpenMem(twsim.Options{})
			}
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			ids, err := db.AddBatch(data)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(37))
			for trial := 0; trial < 8; trial++ {
				q := append([]float64(nil), data[rng.Intn(len(data))]...)
				for i := range q {
					q[i] += (rng.Float64() - 0.5) * 0.08
				}
				k := 1 + rng.Intn(7)
				band := 1 + rng.Intn(5)
				all := bandedBrute(data, ids, q, twsim.BaseLInf, 1e18, band)
				want := all
				if len(want) > k {
					want = want[:k]
				}
				got, err := db.NearestKBand(q, k, band)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d k=%d band=%d: index %d, brute force %d",
						trial, k, band, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d rank %d: index %+v, brute force %+v",
							trial, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestDefaultBandOption: a database opened with Options.Band answers every
// default-method query under that band — Search/NearestK/SearchBatch must
// agree with the explicit SearchBand on a band-less database.
func TestDefaultBandOption(t *testing.T) {
	data := randomWalks(2031, 60, 10, 24)
	const band = 3
	banded, err := twsim.OpenMem(twsim.Options{Band: band})
	if err != nil {
		t.Fatal(err)
	}
	defer banded.Close()
	plain, err := twsim.OpenMem(twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := banded.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.AddBatch(data); err != nil {
		t.Fatal(err)
	}
	q := data[7]
	const eps = 0.4
	want, err := plain.SearchBand(q, eps, band)
	if err != nil {
		t.Fatal(err)
	}
	got, err := banded.Search(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("default-band Search: %d matches, explicit SearchBand %d",
			len(got.Matches), len(want.Matches))
	}
	for i := range want.Matches {
		if got.Matches[i] != want.Matches[i] {
			t.Fatalf("match %d: default-band %+v, explicit %+v", i, got.Matches[i], want.Matches[i])
		}
	}
	// Explicit band 0 on the banded database overrides back to unconstrained.
	wantU, err := plain.Search(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	gotU, err := banded.SearchBand(q, eps, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotU.Matches) != len(wantU.Matches) {
		t.Fatalf("band-0 override: %d matches, unconstrained %d", len(gotU.Matches), len(wantU.Matches))
	}
	for i := range wantU.Matches {
		if gotU.Matches[i] != wantU.Matches[i] {
			t.Fatalf("band-0 override match %d: %+v, want %+v", i, gotU.Matches[i], wantU.Matches[i])
		}
	}
}

// TestNegativeBandRejected: every band-carrying entry point on both engines
// must reject a negative half-width instead of answering under an undefined
// distance.
func TestNegativeBandRejected(t *testing.T) {
	data := randomWalks(2033, 10, 8, 16)
	for _, sharded := range []bool{false, true} {
		name := map[bool]string{false: "db", true: "sharded"}[sharded]
		t.Run(name, func(t *testing.T) {
			var db twsim.Backend
			var err error
			if sharded {
				db, err = twsim.OpenMemSharded(twsim.ShardedOptions{Shards: 2})
			} else {
				db, err = twsim.OpenMem(twsim.Options{})
			}
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if _, err := db.AddBatch(data); err != nil {
				t.Fatal(err)
			}
			q := data[0]
			if _, err := db.SearchBand(q, 0.5, -1); err == nil {
				t.Error("SearchBand(-1) succeeded, want error")
			}
			if _, err := db.NearestKBand(q, 3, -2); err == nil {
				t.Error("NearestKBand(-2) succeeded, want error")
			}
			if _, err := db.NearestKStatsBand(q, 3, -1); err == nil {
				t.Error("NearestKStatsBand(-1) succeeded, want error")
			}
			if _, err := db.SearchBatchBand([][]float64{q}, 0.5, -3, 0); err == nil {
				t.Error("SearchBatchBand(-3) succeeded, want error")
			}
		})
	}
}

// TestEnvelopeSidecarPersistence: the PAA envelope store survives a
// close/reopen through its sidecar file, and any corruption of the sidecar
// is healed by a rebuild from the heap — never trusted, never fatal.
func TestEnvelopeSidecarPersistence(t *testing.T) {
	dir := t.TempDir()
	data := randomWalks(2039, 40, 8, 24)
	db, err := twsim.Create(dir, twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := db.AddBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	sidecar := filepath.Join(dir, "envelopes.paa")
	if _, err := os.Stat(sidecar); err != nil {
		t.Fatalf("sidecar not written on close: %v", err)
	}

	// Reopen: the sidecar loads and the store passes the full fsck.
	db, err = twsim.Open(dir, twsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Verify(); err != nil {
		t.Fatalf("verify after reopen: %v", err)
	}
	want, err := db.SearchBand(data[3], 0.4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the sidecar (flip one payload byte). Open must fall back to a
	// rebuild from the heap and still answer identically.
	raw, err := os.ReadFile(sidecar)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(sidecar, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err = twsim.Open(dir, twsim.Options{})
	if err != nil {
		t.Fatalf("open with corrupt sidecar: %v", err)
	}
	defer db.Close()
	if err := db.Verify(); err != nil {
		t.Fatalf("verify after rebuild: %v", err)
	}
	got, err := db.SearchBand(data[3], 0.4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Matches) != len(want.Matches) {
		t.Fatalf("after rebuild: %d matches, want %d", len(got.Matches), len(want.Matches))
	}
	for i := range want.Matches {
		if got.Matches[i] != want.Matches[i] {
			t.Fatalf("after rebuild match %d: %+v, want %+v", i, got.Matches[i], want.Matches[i])
		}
	}
	// A removal keeps the store in lockstep (fsck checks env count == live).
	if ok, err := db.Remove(ids[0]); err != nil || !ok {
		t.Fatalf("Remove: %v, %v", ok, err)
	}
	if err := db.Verify(); err != nil {
		t.Fatalf("verify after remove: %v", err)
	}
}
