// Command benchcache measures the whole-query result cache and the
// serving-under-load tier (admission control + per-query deadlines),
// writing the results as JSON.
//
// Usage:
//
//	go run ./cmd/benchcache                    # full run, writes BENCH_cache.json
//	go run ./cmd/benchcache -smoke             # small CI smoke run (no file)
//	go run ./cmd/benchcache -seqs 8000 -len 256
//
// Three legs, each with its own invariants:
//
//   - Latency: the same fixed-seed query set is run cold (every query a
//     miss) and hot (every query a hit) at GOMAXPROCS 1 and full width.
//     Every hot-path response must be flagged CacheHit with zero DTW
//     calls and zero candidates — the hit path never touches the index.
//     Full mode fails unless the hot p50 is at least 10x faster than the
//     cold p50.
//
//   - Zipf mix: a Zipf-distributed query stream interleaved with writes
//     (adds and removes) runs against a cached database and an uncached
//     twin receiving the identical operation sequence. Every response
//     must be bit-identical between the two — a stale hit surfaces as a
//     divergence — and the measured hit ratio is recorded along with the
//     invalidation count.
//
//   - Overload: a real HTTP server with MaxInflight/QueueDepth limits is
//     hammered by more concurrent clients than it admits. The leg records
//     accepted/shed counts and the accepted-request p50/p99; it fails
//     unless shedding actually happened (429 + Retry-After observed) and
//     every shed request carried the Retry-After header.
//
// Every row carries gomaxprocs, num_cpu, and cpu_model so a result file
// is interpretable without knowing which machine produced it.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	twsim "repro"
	"repro/internal/hostinfo"
	"repro/internal/server"
	"repro/internal/synth"
)

type latencyRow struct {
	Engine    string  `json:"engine"`
	Procs     int     `json:"gomaxprocs"`
	NumCPU    int     `json:"num_cpu"`
	CPUModel  string  `json:"cpu_model"`
	Queries   int     `json:"queries"`
	ColdP50us float64 `json:"cold_p50_us"`
	ColdP99us float64 `json:"cold_p99_us"`
	HotP50us  float64 `json:"hot_p50_us"`
	HotP99us  float64 `json:"hot_p99_us"`
	Speedup   float64 `json:"hot_speedup_p50"`
	HitDTW    int     `json:"hit_dtw_calls"` // must be 0: hits never touch the index
}

type zipfRow struct {
	Engine        string  `json:"engine"`
	Procs         int     `json:"gomaxprocs"`
	Ops           int     `json:"ops"`
	Writes        int     `json:"writes"`
	HitRatio      float64 `json:"hit_ratio"`
	Invalidations int64   `json:"invalidations"`
	Evictions     int64   `json:"evictions"`
}

type overloadRow struct {
	MaxInflight int     `json:"max_inflight"`
	QueueDepth  int     `json:"queue_depth"`
	Clients     int     `json:"clients"`
	Requests    int     `json:"requests"`
	Accepted    int     `json:"accepted"`
	Shed        int     `json:"shed_429"`
	AcceptP50ms float64 `json:"accepted_p50_ms"`
	AcceptP99ms float64 `json:"accepted_p99_ms"`
}

type report struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	CPUModel   string        `json:"cpu_model"`
	Sequences  int           `json:"sequences"`
	SeqLen     int           `json:"seq_len"`
	Smoke      bool          `json:"smoke"`
	Latency    []latencyRow  `json:"latency"`
	Zipf       []zipfRow     `json:"zipf_mix"`
	Overload   []overloadRow `json:"overload"`
}

func percentile(d []time.Duration, p float64) float64 {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)-1))
	return float64(s[i].Nanoseconds()) / 1e3 // microseconds
}

func main() {
	var (
		out     = flag.String("out", "BENCH_cache.json", "result file (empty = stdout only)")
		smoke   = flag.Bool("smoke", false, "small fast run for CI; implies -out \"\" and skips the 10x latency fence")
		seqs    = flag.Int("seqs", 4000, "number of random-walk sequences")
		seqLen  = flag.Int("len", 128, "sequence length")
		queries = flag.Int("queries", 64, "distinct queries in the latency leg")
		ops     = flag.Int("ops", 2000, "operations in the Zipf mix leg")
	)
	flag.Parse()
	if *smoke {
		*out = ""
		*seqs, *seqLen, *queries, *ops = 300, 64, 16, 300
	}

	rng := rand.New(rand.NewSource(42))
	data := synth.RandomWalkSet(rng, *seqs, *seqLen)
	values := make([][]float64, len(data))
	for i, s := range data {
		values[i] = s
	}
	qs := synth.Queries(rng, data, *queries)
	queryVals := make([][]float64, len(qs))
	for i, q := range qs {
		queryVals[i] = q
	}

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     hostinfo.NumCPU(),
		CPUModel:   hostinfo.CPUModel(),
		Sequences:  *seqs,
		SeqLen:     *seqLen,
		Smoke:      *smoke,
	}

	epsilon := 0.25 * float64(*seqLen)

	// ---- Leg 1: hot-hit vs cold latency, per GOMAXPROCS ----
	for _, procs := range procsList() {
		r := runLatencyLeg(values, queryVals, epsilon, procs)
		rep.Latency = append(rep.Latency, r)
		log.Printf("latency procs=%d: cold p50 %.1fus p99 %.1fus, hot p50 %.1fus p99 %.1fus (%.0fx)",
			procs, r.ColdP50us, r.ColdP99us, r.HotP50us, r.HotP99us, r.Speedup)
		if !*smoke && r.Speedup < 10 {
			log.Fatalf("benchcache: hot p50 only %.1fx faster than cold at procs=%d, below the 10x fence", r.Speedup, procs)
		}
	}

	// ---- Leg 2: Zipf query mix with interleaved writes ----
	z := runZipfLeg(values, queryVals, epsilon, *ops)
	rep.Zipf = append(rep.Zipf, z)
	log.Printf("zipf mix: %d ops (%d writes): hit ratio %.2f, %d invalidations, %d evictions",
		z.Ops, z.Writes, z.HitRatio, z.Invalidations, z.Evictions)

	// ---- Leg 3: overload through a real HTTP server ----
	o := runOverloadLeg(rng, *smoke)
	rep.Overload = append(rep.Overload, o)
	log.Printf("overload inflight=%d queue=%d clients=%d: %d accepted (p50 %.1fms, p99 %.1fms), %d shed with 429",
		o.MaxInflight, o.QueueDepth, o.Clients, o.Accepted, o.AcceptP50ms, o.AcceptP99ms, o.Shed)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("benchcache: writing %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}
}

func procsList() []int {
	n := runtime.NumCPU()
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

func openDB(values [][]float64, cacheBytes int64) *twsim.DB {
	db, err := twsim.OpenMem(twsim.Options{ResultCacheBytes: cacheBytes})
	if err != nil {
		log.Fatalf("benchcache: open: %v", err)
	}
	if _, err := db.AddAll(values); err != nil {
		log.Fatalf("benchcache: load: %v", err)
	}
	return db
}

func runLatencyLeg(values, queryVals [][]float64, epsilon float64, procs int) latencyRow {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	db := openDB(values, 64<<20)
	defer db.Close()

	// Warm pass primes the storage pools (not the result cache) so the
	// cold timings measure query work, not first-touch page faults.
	warm := openDB(values, 0)
	for _, q := range queryVals {
		if _, err := warm.SearchCtx(nil, q, epsilon, 0); err != nil {
			log.Fatalf("benchcache: warm: %v", err)
		}
	}
	warm.Close()

	cold := make([]time.Duration, len(queryVals))
	for i, q := range queryVals {
		start := time.Now()
		res, err := db.SearchCtx(nil, q, epsilon, 0)
		cold[i] = time.Since(start)
		if err != nil {
			log.Fatalf("benchcache: cold query %d: %v", i, err)
		}
		if res.CacheHit {
			log.Fatalf("benchcache: cold query %d reported a cache hit", i)
		}
	}
	hot := make([]time.Duration, len(queryVals))
	hitDTW := 0
	for i, q := range queryVals {
		start := time.Now()
		res, err := db.SearchCtx(nil, q, epsilon, 0)
		hot[i] = time.Since(start)
		if err != nil {
			log.Fatalf("benchcache: hot query %d: %v", i, err)
		}
		if !res.CacheHit {
			log.Fatalf("benchcache: hot query %d missed the cache", i)
		}
		if res.Stats.DTWCalls != 0 || res.Stats.Candidates != 0 {
			log.Fatalf("benchcache: hot query %d did index work: %+v", i, res.Stats)
		}
		hitDTW += res.Stats.DTWCalls
	}
	r := latencyRow{
		Engine:    "single",
		Procs:     procs,
		NumCPU:    hostinfo.NumCPU(),
		CPUModel:  hostinfo.CPUModel(),
		Queries:   len(queryVals),
		ColdP50us: percentile(cold, 0.50),
		ColdP99us: percentile(cold, 0.99),
		HotP50us:  percentile(hot, 0.50),
		HotP99us:  percentile(hot, 0.99),
		HitDTW:    hitDTW,
	}
	if r.HotP50us > 0 {
		r.Speedup = r.ColdP50us / r.HotP50us
	}
	return r
}

func runZipfLeg(values, queryVals [][]float64, epsilon float64, ops int) zipfRow {
	cached := openDB(values, 64<<20)
	defer cached.Close()
	plain := openDB(values, 0)
	defer plain.Close()

	rng := rand.New(rand.NewSource(77))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(queryVals)-1))
	writes := 0
	var added []twsim.ID
	for op := 0; op < ops; op++ {
		// Roughly 1 write per 8 queries, alternating adds and removes, so
		// generations keep advancing while the hot head of the Zipf
		// distribution re-warms.
		if op%8 == 7 {
			writes++
			if len(added) > 4 && rng.Intn(2) == 0 {
				victim := added[0]
				added = added[1:]
				for _, db := range []*twsim.DB{cached, plain} {
					if _, err := db.Remove(victim); err != nil {
						log.Fatalf("benchcache: zipf remove: %v", err)
					}
				}
			} else {
				walk := synth.RandomWalkSet(rng, 1, len(values[0]))[0]
				id, err := cached.Add(walk)
				if err != nil {
					log.Fatalf("benchcache: zipf add: %v", err)
				}
				id2, err := plain.Add(walk)
				if err != nil {
					log.Fatalf("benchcache: zipf add twin: %v", err)
				}
				if id != id2 {
					log.Fatalf("benchcache: twin databases assigned different IDs (%d vs %d)", id, id2)
				}
				added = append(added, id)
			}
			continue
		}
		q := queryVals[int(zipf.Uint64())]
		got, err := cached.SearchCtx(nil, q, epsilon, 0)
		if err != nil {
			log.Fatalf("benchcache: zipf query: %v", err)
		}
		want, err := plain.SearchCtx(nil, q, epsilon, 0)
		if err != nil {
			log.Fatalf("benchcache: zipf twin query: %v", err)
		}
		if err := sameMatches(got.Matches, want.Matches); err != nil {
			log.Fatalf("benchcache: cached result diverged from uncached twin after %d writes (cache_hit=%v): %v",
				writes, got.CacheHit, err)
		}
	}
	st := cached.ResultCacheStats()
	return zipfRow{
		Engine:        "single",
		Procs:         runtime.GOMAXPROCS(0),
		Ops:           ops,
		Writes:        writes,
		HitRatio:      st.HitRatio(),
		Invalidations: st.Invalidations,
		Evictions:     st.Evictions,
	}
}

func sameMatches(a, b []twsim.Match) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d matches vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Dist != b[i].Dist {
			return fmt.Errorf("match %d: (%d, %g) vs (%d, %g)", i, a[i].ID, a[i].Dist, b[i].ID, b[i].Dist)
		}
	}
	return nil
}

func runOverloadLeg(rng *rand.Rand, smoke bool) overloadRow {
	// The leg needs queries slow enough that the burst actually piles up
	// at admission, independent of the (possibly tiny) smoke corpus: a
	// dedicated dataset where a huge epsilon forces every stored sequence
	// through exact DTW (~100ms+ per query).
	overloadData := synth.RandomWalkSet(rng, 1500, 100)
	values := make([][]float64, len(overloadData))
	for i, s := range overloadData {
		values[i] = s
	}
	oqs := synth.Queries(rng, overloadData, 16)
	queryVals := make([][]float64, len(oqs))
	for i, q := range oqs {
		queryVals[i] = q
	}
	db := openDB(values, 0)
	defer db.Close()
	limits := server.Limits{MaxInflight: 2, QueueDepth: 2}
	srv := server.NewBackendLimits(db, limits)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	clients := 16
	perClient := 8
	if smoke {
		clients, perClient = 8, 4
	}
	const overloadEpsilon = 1e12
	fire := make(chan struct{})
	var (
		mu       sync.Mutex
		accepted []time.Duration
		shed     int
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := server.NewClient(ts.URL, ts.Client())
			<-fire
			for i := 0; i < perClient; i++ {
				q := queryVals[(c*perClient+i)%len(queryVals)]
				start := time.Now()
				_, err := cl.SearchCtx(nil, q, overloadEpsilon, 0)
				elapsed := time.Since(start)
				var oe *server.ErrOverloaded
				switch {
				case err == nil:
					mu.Lock()
					accepted = append(accepted, elapsed)
					mu.Unlock()
				case errors.As(err, &oe):
					if oe.RetryAfter <= 0 {
						log.Fatalf("benchcache: 429 without a Retry-After")
					}
					mu.Lock()
					shed++
					mu.Unlock()
				default:
					log.Fatalf("benchcache: overload client %d: %v", c, err)
				}
			}
		}(c)
	}
	close(fire)
	wg.Wait()
	if shed == 0 {
		log.Fatalf("benchcache: overload leg shed nothing (%d clients against %d slots + %d queue); the admission tier never engaged",
			clients, limits.MaxInflight, limits.QueueDepth)
	}
	return overloadRow{
		MaxInflight: limits.MaxInflight,
		QueueDepth:  limits.QueueDepth,
		Clients:     clients,
		Requests:    clients * perClient,
		Accepted:    len(accepted),
		Shed:        shed,
		AcceptP50ms: percentile(accepted, 0.50) / 1e3,
		AcceptP99ms: percentile(accepted, 0.99) / 1e3,
	}
}
