// Command twsim queries an on-disk sequence database built with datagen (or
// any program using the twsim library).
//
// Usage:
//
//	twsim -db /tmp/walkdb stats
//	twsim -db /tmp/walkdb search -eps 0.5 -q "1.0,1.1,1.2,1.1"
//	twsim -db /tmp/walkdb search -eps 0.5 -id 17          # query by stored id
//	twsim -db /tmp/walkdb knn -k 5 -id 17
//	twsim -db /tmp/walkdb get -id 3
//	twsim -db /tmp/walkdb bench -eps 0.5 -id 17           # all methods side by side
//	twsim -db /tmp/walkdb subseq -eps 0.3 -q "1,2,3" -winlens 3,5,7
//	twsim -db /tmp/walkdb remove -id 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	twsim "repro"
)

func main() {
	var (
		dbDir = flag.String("db", "", "database directory (required)")
		eps   = flag.Float64("eps", 0.1, "search tolerance")
		k     = flag.Int("k", 5, "neighbors for knn")
		qStr  = flag.String("q", "", "query sequence as comma-separated values")
		qID   = flag.Int("id", -1, "use stored sequence <id> as the query")
		cats  = flag.Int("categories", 100, "ST-Filter categories for bench")
		wins  = flag.String("winlens", "8,16", "comma-separated window lengths for subseq")
		step  = flag.Int("step", 1, "window step for subseq")
	)
	flag.Parse()
	if *dbDir == "" || flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: twsim -db <dir> [flags] {stats|search|knn|get|bench|subseq|remove}")
		flag.PrintDefaults()
		os.Exit(2)
	}
	db, err := twsim.Open(*dbDir, twsim.Options{})
	die(err)
	defer db.Close()

	query := func() []float64 {
		if *qStr != "" {
			return parseSeq(*qStr)
		}
		if *qID >= 0 {
			s, err := db.Get(twsim.ID(*qID))
			die(err)
			return s
		}
		fmt.Fprintln(os.Stderr, "twsim: provide a query with -q or -id")
		os.Exit(2)
		return nil
	}

	switch flag.Arg(0) {
	case "stats":
		fmt.Printf("sequences:   %d\n", db.Len())
		fmt.Printf("data bytes:  %d\n", db.DataBytes())
		fmt.Printf("index pages: %d (%.2f%% of data)\n", db.IndexPages(),
			100*float64(db.IndexPages()*1024)/float64(db.DataBytes()))
		die(db.Verify())
		fmt.Println("integrity check (heap + index): ok")
	case "get":
		if *qID < 0 {
			die(fmt.Errorf("get needs -id"))
		}
		s, err := db.Get(twsim.ID(*qID))
		die(err)
		fmt.Println(formatSeq(s))
	case "search":
		q := query()
		res, err := db.Search(q, *eps)
		die(err)
		fmt.Printf("%d matches (of %d candidates) in %v\n",
			len(res.Matches), res.Stats.Candidates, res.Stats.Wall.Round(time.Microsecond))
		for _, m := range res.Matches {
			fmt.Printf("  id %-8d dist %.6f\n", m.ID, m.Dist)
		}
	case "knn":
		q := query()
		matches, err := db.NearestK(q, *k)
		die(err)
		for i, m := range matches {
			fmt.Printf("%2d. id %-8d dist %.6f\n", i+1, m.ID, m.Dist)
		}
	case "bench":
		q := query()
		stf, err := db.BaselineSTFilter(*cats)
		die(err)
		methods := []twsim.Searcher{
			db.BaselineNaiveScan(),
			db.BaselineLBScan(),
			stf,
			db.TWSimSearcher(),
		}
		fmt.Printf("%-14s %10s %10s %12s %10s\n", "method", "matches", "cands", "wall", "dtw-calls")
		for _, m := range methods {
			res, err := m.Search(q, *eps)
			die(err)
			fmt.Printf("%-14s %10d %10d %12v %10d\n",
				m.Name(), len(res.Matches), res.Stats.Candidates,
				res.Stats.Wall.Round(time.Microsecond), res.Stats.DTWCalls)
		}
	case "subseq":
		q := query()
		var lens []int
		for _, part := range strings.Split(*wins, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			die(err)
			lens = append(lens, n)
		}
		idx, err := db.BuildSubseqIndex(lens, *step)
		die(err)
		defer idx.Close()
		res, err := idx.Search(q, *eps)
		die(err)
		fmt.Printf("%d matching windows (of %d candidates, %d indexed) in %v\n",
			len(res.Matches), res.Stats.Candidates, idx.NumWindows(),
			res.Stats.Wall.Round(time.Microsecond))
		for _, m := range res.Matches {
			fmt.Printf("  id %-8d offset %-6d len %-4d dist %.6f\n", m.ID, m.Offset, m.Len, m.Dist)
		}
	case "remove":
		if *qID < 0 {
			die(fmt.Errorf("remove needs -id"))
		}
		ok, err := db.Remove(twsim.ID(*qID))
		die(err)
		if !ok {
			fmt.Printf("id %d was not present\n", *qID)
		} else {
			die(db.Flush())
			fmt.Printf("removed id %d (%d sequences remain)\n", *qID, db.Len())
		}
	default:
		die(fmt.Errorf("unknown command %q", flag.Arg(0)))
	}
}

func parseSeq(s string) []float64 {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		die(err)
		out = append(out, v)
	}
	return out
}

func formatSeq(s []float64) string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "twsim:", err)
		os.Exit(1)
	}
}
