// Command benchshards measures the sharded query engine's batch-search
// throughput against the single-shard baseline on a synthetic random-walk
// workload (the paper's §5.1 generator), writing the results as JSON.
//
// Usage:
//
//	go run ./cmd/benchshards                    # full run, writes BENCH_shard.json
//	go run ./cmd/benchshards -smoke             # small CI smoke run (no file)
//	go run ./cmd/benchshards -seqs 8000 -len 256 -queries 128
//
// Each configuration builds an in-memory database with the same data and
// queries (fixed seed), then times one warmed SearchBatch. Reported per
// configuration: queries/sec, per-query p50/p99 latency, exact-DTW call
// count, and candidate ratio. Shard counts default to {1, 4, NumCPU},
// deduplicated, and every count runs twice — once at GOMAXPROCS=1 and once
// at the machine's full width — with both rows recorded (per-row
// "gomaxprocs" field). Sharding pays off through N independent buffer
// pools (one mutex each, N x aggregate cache) plus parallel DTW
// verification, so expect the multi-shard gain only in the full-width
// rows; the GOMAXPROCS=1 rows isolate pool-contention relief.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	twsim "repro"
	"repro/internal/hostinfo"
	"repro/internal/synth"
)

type config struct {
	Shards      int     `json:"shards"`
	Procs       int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	CPUModel    string  `json:"cpu_model"`
	QPS         float64 `json:"queries_per_sec"`
	WallMS      float64 `json:"wall_ms"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	DTWCalls    int     `json:"dtw_calls"`
	Candidates  int     `json:"candidates"`
	Matches     int     `json:"matches"`
	SpeedupVs1x float64 `json:"speedup_vs_1_shard"`
}

type report struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Sequences  int      `json:"sequences"`
	SeqLen     int      `json:"seq_len"`
	Queries    int      `json:"queries"`
	Epsilon    float64  `json:"epsilon"`
	Smoke      bool     `json:"smoke"`
	Configs    []config `json:"configs"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_shard.json", "result file (empty = stdout only)")
		smoke   = flag.Bool("smoke", false, "small fast run for CI; implies -out \"\"")
		seqs    = flag.Int("seqs", 4000, "number of random-walk sequences")
		seqLen  = flag.Int("len", 128, "sequence length")
		queries = flag.Int("queries", 64, "queries per batch")
		eps     = flag.Float64("eps", 0.35, "search tolerance (paper's epsilon)")
	)
	flag.Parse()
	if *smoke {
		*out = ""
		*seqs, *seqLen, *queries = 300, 64, 8
	}

	rng := rand.New(rand.NewSource(42))
	data := synth.RandomWalkSet(rng, *seqs, *seqLen)
	values := make([][]float64, len(data))
	for i, s := range data {
		values[i] = s
	}
	qs := synth.Queries(rng, data, *queries)
	queryVals := make([][]float64, len(qs))
	for i, q := range qs {
		queryVals[i] = q
	}

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Sequences:  *seqs,
		SeqLen:     *seqLen,
		Queries:    *queries,
		Epsilon:    *eps,
		Smoke:      *smoke,
	}
	// Every shard count runs at both GOMAXPROCS=1 (the serial baseline —
	// shows pure pool-contention relief) and the machine's full width (the
	// parallel-verification payoff). Speedups are computed within each
	// procs group against its own 1-shard baseline, never across groups.
	for _, procs := range procsList() {
		baseIdx := len(rep.Configs)
		for _, n := range shardCounts(rep.NumCPU) {
			c, err := runConfig(n, procs, values, queryVals, *eps)
			if err != nil {
				log.Fatalf("benchshards: %d shards procs=%d: %v", n, procs, err)
			}
			if len(rep.Configs) > baseIdx {
				c.SpeedupVs1x = c.QPS / rep.Configs[baseIdx].QPS
			} else {
				c.SpeedupVs1x = 1
			}
			rep.Configs = append(rep.Configs, c)
			log.Printf("shards=%d procs=%d: %.1f queries/sec (p50 %.2f ms, p99 %.2f ms, %d DTW calls, %.1f%% candidates)",
				c.Shards, procs, c.QPS, c.P50MS, c.P99MS, c.DTWCalls,
				100*float64(c.Candidates)/float64(*seqs**queries))
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("benchshards: writing %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}
}

// shardCounts returns {1, 4, NumCPU} deduplicated and sorted, so the
// baseline always runs first.
func shardCounts(maxprocs int) []int {
	set := map[int]bool{1: true, 4: true, maxprocs: true}
	var out []int
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// procsList returns the GOMAXPROCS settings every configuration runs at:
// 1 and the machine's full width (deduplicated on single-core runners).
func procsList() []int {
	n := runtime.NumCPU()
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

func runConfig(shards, procs int, data, queries [][]float64, eps float64) (config, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	db, err := twsim.OpenMemSharded(twsim.ShardedOptions{Shards: shards})
	if err != nil {
		return config{}, err
	}
	defer db.Close()
	if _, err := db.AddBatch(data); err != nil {
		return config{}, err
	}

	// Warm the buffer pools with one untimed pass.
	if _, err := db.SearchBatch(queries, eps, 0); err != nil {
		return config{}, err
	}

	start := time.Now()
	results, err := db.SearchBatch(queries, eps, 0)
	wall := time.Since(start)
	if err != nil {
		return config{}, err
	}

	lat := make([]time.Duration, len(results))
	c := config{Shards: shards, Procs: procs, NumCPU: hostinfo.NumCPU(), CPUModel: hostinfo.CPUModel()}
	for i, r := range results {
		lat[i] = r.Stats.Wall
		c.DTWCalls += r.Stats.DTWCalls
		c.Candidates += r.Stats.Candidates
		c.Matches += len(r.Matches)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	c.WallMS = float64(wall.Microseconds()) / 1e3
	c.QPS = float64(len(queries)) / wall.Seconds()
	c.P50MS = float64(lat[len(lat)/2].Microseconds()) / 1e3
	c.P99MS = float64(lat[len(lat)*99/100].Microseconds()) / 1e3
	return c, nil
}
