// Command benchcascade measures what the tiered lower-bound cascade and the
// allocation-free DTW kernels buy on the refine hot path, writing the
// results as JSON.
//
// Usage:
//
//	go run ./cmd/benchcascade                   # full run, writes BENCH_cascade.json
//	go run ./cmd/benchcascade -smoke            # small CI smoke run (no file, no kernel timings)
//	go run ./cmd/benchcascade -seqs 8000 -len 256 -queries 128
//
// Two workloads run with the cascade off (the pre-cascade refine loop) and
// on, over the same data and queries (fixed seeds, same generator and
// default sizes as cmd/benchshards so the numbers stay comparable):
//
//   - equal_len: the benchshards workload (random walks of one length). The
//     point-feature tiers rarely fire here — walks of equal length share
//     first/last/extrema ranges — so the reduction comes from the
//     reachability corridor.
//   - vary_len: random walks of mixed lengths, where the feature tiers
//     (LB_Kim, the full-envelope LB_Keogh, LB_Yi) prune before any DP runs.
//
// Reported per configuration: queries/sec, per-query p50/p99 latency,
// exact-DTW call count, and the per-tier prune counts. The harness fails if
// the two configurations disagree on any match (the cascade must be
// invisible in results). A kernel section times the devirtualized pooled
// kernels against a local copy of the seed's allocate-per-call DP, and an
// allocation section reports testing.AllocsPerRun for the steady-state
// kernels (expected 0).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	twsim "repro"
	"repro/internal/dtw"
	"repro/internal/hostinfo"
	"repro/internal/seq"
	"repro/internal/synth"
)

type config struct {
	Cascade          bool    `json:"cascade"`
	Procs            int     `json:"gomaxprocs"`
	NumCPU           int     `json:"num_cpu"`
	CPUModel         string  `json:"cpu_model"`
	QPS              float64 `json:"queries_per_sec"`
	WallMS           float64 `json:"wall_ms"`
	P50MS            float64 `json:"p50_ms"`
	P99MS            float64 `json:"p99_ms"`
	Candidates       int     `json:"candidates"`
	DTWCalls         int     `json:"dtw_calls"`
	DTWAbandoned     int     `json:"dtw_abandoned"`
	LBKimPruned      int     `json:"lb_kim_pruned"`
	LBPAAPruned      int     `json:"lb_paa_pruned"`
	LBKeoghPruned    int     `json:"lb_keogh_pruned"`
	LBYiPruned       int     `json:"lb_yi_pruned"`
	LBImprovedPruned int     `json:"lb_improved_pruned"`
	CorridorPruned   int     `json:"corridor_pruned"`
	Matches          int     `json:"matches"`
	DTWReductionPct  float64 `json:"dtw_call_reduction_pct"`
}

type workload struct {
	Name    string   `json:"name"`
	Seqs    int      `json:"sequences"`
	MinLen  int      `json:"min_len"`
	MaxLen  int      `json:"max_len"`
	Queries int      `json:"queries"`
	Epsilon float64  `json:"epsilon"`
	Band    int      `json:"band"`
	Configs []config `json:"configs"`
}

type kernel struct {
	Op       string  `json:"op"`
	Base     string  `json:"base"`
	NsOpSeed float64 `json:"ns_op_seed"`
	NsOpNew  float64 `json:"ns_op_kernel"`
	Speedup  float64 `json:"speedup"`
}

type report struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Smoke      bool               `json:"smoke"`
	Workloads  []workload         `json:"workloads"`
	Kernels    []kernel           `json:"kernels,omitempty"`
	AllocsPer  map[string]float64 `json:"allocs_per_op"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_cascade.json", "result file (empty = stdout only)")
		smoke   = flag.Bool("smoke", false, "small fast run for CI; implies -out \"\" and skips kernel timings")
		seqs    = flag.Int("seqs", 4000, "number of random-walk sequences")
		seqLen  = flag.Int("len", 128, "sequence length")
		queries = flag.Int("queries", 64, "queries per batch")
		eps     = flag.Float64("eps", 0.35, "search tolerance (paper's epsilon)")
		band    = flag.Int("band", 8, "Sakoe-Chiba band half-width for the banded workload")
	)
	flag.Parse()
	if *smoke {
		*out = ""
		*seqs, *seqLen, *queries = 300, 64, 8
	}

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Smoke:      *smoke,
		AllocsPer:  map[string]float64{},
	}

	// Workload 1: the benchshards workload (same seed, generator, sizes).
	rng := rand.New(rand.NewSource(42))
	equal := synth.RandomWalkSet(rng, *seqs, *seqLen)
	equalQ := synth.Queries(rng, equal, *queries)
	rep.Workloads = append(rep.Workloads,
		runWorkload("equal_len", equal, equalQ, *seqLen, *seqLen, *eps, 0, *smoke))

	// Workload 2: mixed lengths, where the point-feature tiers prune.
	vrng := rand.New(rand.NewSource(43))
	minLen, maxLen := *seqLen/4, *seqLen
	vary := synth.RandomWalkSetVaryLen(vrng, *seqs, minLen, maxLen)
	varyQ := synth.Queries(vrng, vary, *queries)
	rep.Workloads = append(rep.Workloads,
		runWorkload("vary_len", vary, varyQ, minLen, maxLen, *eps, 0, *smoke))

	// Workload 3: equal lengths under a Sakoe–Chiba band, where the banded
	// envelope tiers (LB_PAA before the fetch, banded LB_Keogh and
	// LB_Improved after) carry the pruning the corridor cannot (the banded
	// exact DP replaces it).
	bw := runWorkload("equal_len_band", equal, equalQ, *seqLen, *seqLen, *eps, *band, *smoke)
	rep.Workloads = append(rep.Workloads, bw)
	for _, c := range bw.Configs {
		if !c.Cascade {
			continue
		}
		if feat := c.LBPAAPruned + c.LBKeoghPruned + c.LBImprovedPruned; feat == 0 && c.Candidates > 0 {
			log.Fatalf("benchcascade: banded workload pruned nothing with the envelope tiers (candidates=%d)", c.Candidates)
		}
	}

	if !*smoke {
		rep.Kernels = runKernels(*seqLen)
	}
	rep.AllocsPer["distance"] = measureAllocs(*seqLen, false)
	rep.AllocsPer["distance_within"] = measureAllocs(*seqLen, true)

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("benchcascade: writing %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}
}

// procsList returns the GOMAXPROCS settings every configuration runs at:
// the serial baseline and the machine's full width (deduplicated on
// single-core machines). Recording both rows keeps the numbers honest —
// cascade wins that only show up with parallelism (or only without) are
// visible instead of averaged away.
func procsList() []int {
	n := runtime.NumCPU()
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

func runWorkload(name string, data []seq.Sequence, qs []seq.Sequence, minLen, maxLen int, eps float64, band int, smoke bool) workload {
	values := make([][]float64, len(data))
	for i, s := range data {
		values[i] = s
	}
	queryVals := make([][]float64, len(qs))
	for i, q := range qs {
		queryVals[i] = q
	}
	w := workload{
		Name: name, Seqs: len(data), MinLen: minLen, MaxLen: maxLen,
		Queries: len(qs), Epsilon: eps, Band: band,
	}
	var baseline []*twsim.Result
	for _, procs := range procsList() {
		baseIdx := len(w.Configs) // this procs-group's cascade=false row
		for _, cascade := range []bool{false, true} {
			c, results, err := runConfig(cascade, procs, band, values, queryVals, eps)
			if err != nil {
				log.Fatalf("benchcascade: %s cascade=%v procs=%d: %v", name, cascade, procs, err)
			}
			if baseline == nil {
				baseline = results
			} else {
				// Every configuration — cascade on or off, serial or wide —
				// must return bit-identical matches.
				checkIdentical(name, baseline, results)
			}
			if cascade {
				if base := w.Configs[baseIdx].DTWCalls; base > 0 {
					c.DTWReductionPct = 100 * float64(base-c.DTWCalls) / float64(base)
				}
			}
			w.Configs = append(w.Configs, c)
			log.Printf("%s cascade=%v procs=%d: %.1f queries/sec (p50 %.2f ms, p99 %.2f ms), %d/%d DTW calls, pruned kim=%d paa=%d keogh=%d yi=%d improved=%d corridor=%d",
				name, cascade, procs, c.QPS, c.P50MS, c.P99MS, c.DTWCalls, c.Candidates,
				c.LBKimPruned, c.LBPAAPruned, c.LBKeoghPruned, c.LBYiPruned, c.LBImprovedPruned, c.CorridorPruned)
		}
	}
	if band > 0 && smoke {
		checkBandedOracle(name, values, queryVals, eps, band, baseline)
	}
	return w
}

func runConfig(cascade bool, procs, band int, data, queries [][]float64, eps float64) (config, []*twsim.Result, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	db, err := twsim.OpenMem(twsim.Options{DisableCascade: !cascade})
	if err != nil {
		return config{}, nil, err
	}
	defer db.Close()
	if _, err := db.AddBatch(data); err != nil {
		return config{}, nil, err
	}

	// Warm the buffer pools (and the kernel row pools) with one untimed pass.
	if _, err := db.SearchBatchBand(queries, eps, band, 0); err != nil {
		return config{}, nil, err
	}

	start := time.Now()
	results, err := db.SearchBatchBand(queries, eps, band, 0)
	wall := time.Since(start)
	if err != nil {
		return config{}, nil, err
	}

	lat := make([]time.Duration, len(results))
	c := config{Cascade: cascade, Procs: procs, NumCPU: hostinfo.NumCPU(), CPUModel: hostinfo.CPUModel()}
	for i, r := range results {
		lat[i] = r.Stats.Wall
		c.Candidates += r.Stats.Candidates
		c.DTWCalls += r.Stats.DTWCalls
		c.DTWAbandoned += r.Stats.DTWAbandoned
		c.LBKimPruned += r.Stats.LBKimPruned
		c.LBPAAPruned += r.Stats.LBPAAPruned
		c.LBKeoghPruned += r.Stats.LBKeoghPruned
		c.LBYiPruned += r.Stats.LBYiPruned
		c.LBImprovedPruned += r.Stats.LBImprovedPruned
		c.CorridorPruned += r.Stats.CorridorPruned
		c.Matches += len(r.Matches)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	c.WallMS = float64(wall.Microseconds()) / 1e3
	c.QPS = float64(len(queries)) / wall.Seconds()
	c.P50MS = float64(lat[len(lat)/2].Microseconds()) / 1e3
	c.P99MS = float64(lat[len(lat)*99/100].Microseconds()) / 1e3
	return c, results, nil
}

// checkBandedOracle compares the banded index search against a brute-force
// banded scan — the no-false-dismissal oracle for the banded query mode
// (smoke runs only; it is O(seqs × queries) exact DPs).
func checkBandedOracle(name string, data, queries [][]float64, eps float64, band int, got []*twsim.Result) {
	for qi, q := range queries {
		var want []twsim.Match
		for id, s := range data {
			if d := dtw.BandDistance(s, q, seq.LInf, band); d <= eps {
				want = append(want, twsim.Match{ID: twsim.ID(id), Dist: d})
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].Dist != want[j].Dist {
				return want[i].Dist < want[j].Dist
			}
			return want[i].ID < want[j].ID
		})
		if len(want) != len(got[qi].Matches) {
			log.Fatalf("benchcascade: %s query %d: banded search returned %d matches, brute-force scan %d",
				name, qi, len(got[qi].Matches), len(want))
		}
		for i := range want {
			if want[i] != got[qi].Matches[i] {
				log.Fatalf("benchcascade: %s query %d match %d: banded search %+v, brute-force scan %+v",
					name, qi, i, got[qi].Matches[i], want[i])
			}
		}
	}
}

// checkIdentical fails the run if the cascade changed any result — it is an
// optimization, not a semantics change.
func checkIdentical(name string, want, got []*twsim.Result) {
	if len(want) != len(got) {
		log.Fatalf("benchcascade: %s: result count diverged", name)
	}
	for qi := range want {
		if len(want[qi].Matches) != len(got[qi].Matches) {
			log.Fatalf("benchcascade: %s query %d: cascade returned %d matches, baseline %d",
				name, qi, len(got[qi].Matches), len(want[qi].Matches))
		}
		for i := range want[qi].Matches {
			if want[qi].Matches[i] != got[qi].Matches[i] {
				log.Fatalf("benchcascade: %s query %d match %d: cascade %+v, baseline %+v",
					name, qi, i, got[qi].Matches[i], want[qi].Matches[i])
			}
		}
	}
}

// runKernels times the devirtualized pooled kernels against seedDistance /
// seedDistanceWithin, local copies of the pre-kernel implementation
// (allocate two DP rows per call, dispatch the base through its methods).
func runKernels(n int) []kernel {
	rng := rand.New(rand.NewSource(7))
	s := synth.RandomWalk(rng, n)
	q := synth.RandomWalk(rng, n)
	var out []kernel
	for _, base := range []seq.Base{seq.LInf, seq.L1, seq.L2Sq} {
		seedNs := float64(testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seedDistance(s, q, base)
			}
		}).NsPerOp())
		newNs := float64(testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dtw.Distance(s, q, base)
			}
		}).NsPerOp())
		out = append(out, kernel{
			Op: "distance", Base: base.String(),
			NsOpSeed: seedNs, NsOpNew: newNs, Speedup: seedNs / newNs,
		})
	}
	// Early-abandoning variant at a tolerance the pair satisfies, so both
	// implementations run the full DP (worst case for the kernel).
	eps := dtw.Distance(s, q, seq.LInf) * 1.01
	seedNs := float64(testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seedDistanceWithin(s, q, seq.LInf, eps)
		}
	}).NsPerOp())
	newNs := float64(testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dtw.DistanceWithin(s, q, seq.LInf, eps)
		}
	}).NsPerOp())
	out = append(out, kernel{
		Op: "distance_within", Base: seq.LInf.String(),
		NsOpSeed: seedNs, NsOpNew: newNs, Speedup: seedNs / newNs,
	})
	return out
}

// measureAllocs reports steady-state testing.AllocsPerRun for the pooled
// kernels after one warmup call (the first call per P may grow the pool).
func measureAllocs(n int, within bool) float64 {
	rng := rand.New(rand.NewSource(9))
	s := synth.RandomWalk(rng, n)
	q := synth.RandomWalk(rng, n)
	eps := dtw.Distance(s, q, seq.LInf) * 1.01
	if within {
		dtw.DistanceWithin(s, q, seq.LInf, eps)
		return testing.AllocsPerRun(200, func() {
			dtw.DistanceWithin(s, q, seq.LInf, eps)
		})
	}
	dtw.Distance(s, q, seq.LInf)
	return testing.AllocsPerRun(200, func() {
		dtw.Distance(s, q, seq.LInf)
	})
}

// seedDistance is the pre-kernel Distance: two fresh DP rows per call, base
// dispatched per cell through its methods. Kept here as the benchmark
// baseline so the comparison survives future kernel changes.
func seedDistance(s, q seq.Sequence, base seq.Base) float64 {
	switch {
	case s.Empty() && q.Empty():
		return 0
	case s.Empty() || q.Empty():
		return dtw.Inf
	}
	if len(q) > len(s) {
		s, q = q, s
	}
	prev := make([]float64, len(q))
	cur := make([]float64, len(q))
	for j := range prev {
		e := base.Elem(s[0], q[j])
		if j == 0 {
			prev[j] = e
		} else {
			prev[j] = base.Combine(e, prev[j-1])
		}
	}
	for i := 1; i < len(s); i++ {
		for j := range cur {
			e := base.Elem(s[i], q[j])
			best := prev[j]
			if j > 0 {
				if cur[j-1] < best {
					best = cur[j-1]
				}
				if prev[j-1] < best {
					best = prev[j-1]
				}
			}
			cur[j] = base.Combine(e, best)
		}
		prev, cur = cur, prev
	}
	return prev[len(q)-1]
}

// seedDistanceWithin is the pre-kernel DistanceWithin (same provenance as
// seedDistance).
func seedDistanceWithin(s, q seq.Sequence, base seq.Base, epsilon float64) (float64, bool) {
	switch {
	case s.Empty() && q.Empty():
		return 0, 0 <= epsilon
	case s.Empty() || q.Empty():
		return dtw.Inf, false
	}
	if epsilon < 0 {
		return dtw.Inf, false
	}
	if base.Elem(s[0], q[0]) > epsilon || base.Elem(s[len(s)-1], q[len(q)-1]) > epsilon {
		return dtw.Inf, false
	}
	if len(q) > len(s) {
		s, q = q, s
	}
	prev := make([]float64, len(q))
	cur := make([]float64, len(q))
	alive := false
	for j := range prev {
		e := base.Elem(s[0], q[j])
		if j == 0 {
			prev[j] = e
		} else {
			prev[j] = base.Combine(e, prev[j-1])
		}
		if prev[j] <= epsilon {
			alive = true
		}
	}
	if !alive {
		return dtw.Inf, false
	}
	for i := 1; i < len(s); i++ {
		alive = false
		for j := range cur {
			e := base.Elem(s[i], q[j])
			best := prev[j]
			if j > 0 {
				if cur[j-1] < best {
					best = cur[j-1]
				}
				if prev[j-1] < best {
					best = prev[j-1]
				}
			}
			cur[j] = base.Combine(e, best)
			if cur[j] <= epsilon {
				alive = true
			}
		}
		if !alive {
			return dtw.Inf, false
		}
		prev, cur = cur, prev
	}
	d := prev[len(q)-1]
	if d > epsilon {
		return dtw.Inf, false
	}
	return d, true
}
