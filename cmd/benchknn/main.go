// Command benchknn measures the envelope-sharpened k-NN walk: for every
// combination of engine {guttman, flat}, k {1, 10, 100}, and band {0, 8}
// it runs the same fixed-seed query set twice — once with the two-level
// frontier re-keying candidates by max(index mindist, LB_PAA) and once
// with ordering disabled — and records exact DTW calls, frontier pushes,
// re-pushes, envelope cutoffs, and throughput, writing the results as
// JSON.
//
// Usage:
//
//	go run ./cmd/benchknn                      # full run, writes BENCH_knn.json
//	go run ./cmd/benchknn -smoke               # small CI smoke run (no file)
//	go run ./cmd/benchknn -seqs 8000 -len 256
//
// Three invariants are enforced on every row before it is recorded:
//
//   - Bit-identity: the ordering-on and ordering-off legs must return
//     identical matches (ID and distance) query for query. The envelope
//     key is a lower bound, so re-keying may only reorder work, never
//     change the answer.
//
//   - Conservation: candidates = Σ per-tier pruned + dtw_calls. The
//     envelope cutoff truncates the candidate stream before it reaches
//     the cascade, so the law holds on exactly the candidates admitted.
//
//   - Fence (full mode, banded rows): at k=10 band=8 — where LB_PAA is
//     sharpest — the ordering-on leg must make at least 30% fewer exact
//     DTW calls than the ordering-off leg on BOTH engines. That fence is
//     the reduction the two-level frontier exists to hold. The unbanded
//     LB_PAA bound is much weaker (it envelopes the query with its global
//     range), so band=0 rows are reported but not fenced.
//
// Every row carries gomaxprocs, num_cpu, and cpu_model so a result file
// is interpretable without knowing which machine produced it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"time"

	twsim "repro"
	"repro/internal/hostinfo"
	"repro/internal/synth"
)

type row struct {
	Engine         string  `json:"engine"`
	Ordering       bool    `json:"env_ordering"`
	K              int     `json:"k"`
	Band           int     `json:"band"`
	Procs          int     `json:"gomaxprocs"`
	NumCPU         int     `json:"num_cpu"`
	CPUModel       string  `json:"cpu_model"`
	QPS            float64 `json:"queries_per_sec"`
	WallMS         float64 `json:"wall_ms"`
	Candidates     int     `json:"candidates"`
	DTWCalls       int     `json:"dtw_calls"`
	FrontierPushes int     `json:"knn_frontier_pushes"`
	Repushes       int     `json:"knn_repushes"`
	EnvCutoffs     int     `json:"knn_envelope_cutoffs"`
	Matches        int     `json:"matches"`
}

type fenceRow struct {
	Engine       string  `json:"engine"`
	K            int     `json:"k"`
	Band         int     `json:"band"`
	DTWOn        int     `json:"dtw_calls_ordering_on"`
	DTWOff       int     `json:"dtw_calls_ordering_off"`
	DTWReduction float64 `json:"dtw_call_reduction"`
}

type report struct {
	GOMAXPROCS int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	CPUModel   string     `json:"cpu_model"`
	Sequences  int        `json:"sequences"`
	SeqLen     int        `json:"seq_len"`
	Queries    int        `json:"queries"`
	Smoke      bool       `json:"smoke"`
	Rows       []row      `json:"rows"`
	Fences     []fenceRow `json:"fences"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_knn.json", "result file (empty = stdout only)")
		smoke   = flag.Bool("smoke", false, "small fast run for CI; implies -out \"\" and skips the reduction fence")
		seqs    = flag.Int("seqs", 4000, "number of random-walk sequences")
		seqLen  = flag.Int("len", 128, "sequence length")
		queries = flag.Int("queries", 64, "queries per pass")
	)
	flag.Parse()
	ks := []int{1, 10, 100}
	if *smoke {
		*out = ""
		*seqs, *seqLen, *queries = 300, 64, 8
		ks = []int{1, 10}
	}

	rng := rand.New(rand.NewSource(42))
	data := synth.RandomWalkSet(rng, *seqs, *seqLen)
	values := make([][]float64, len(data))
	for i, s := range data {
		values[i] = s
	}
	qs := synth.Queries(rng, data, *queries)
	queryVals := make([][]float64, len(qs))
	for i, q := range qs {
		queryVals[i] = q
	}

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     hostinfo.NumCPU(),
		CPUModel:   hostinfo.CPUModel(),
		Sequences:  *seqs,
		SeqLen:     *seqLen,
		Queries:    *queries,
		Smoke:      *smoke,
	}

	// dtwAt[engine][k][band][ordering] for the fence section.
	type legKey struct {
		engine   string
		k, band  int
		ordering bool
	}
	dtwAt := map[legKey]int{}

	for _, engine := range []string{twsim.EngineGuttman, twsim.EngineFlat} {
		// Two databases per engine over identical data: the ordering-off
		// one is the control every ordering-on row is verified against.
		dbOn := openDB(engine, false, values)
		dbOff := openDB(engine, true, values)
		for _, k := range ks {
			for _, band := range []int{0, 8} {
				oracle := runMatches(dbOff, queryVals, k, band)
				for _, procs := range procsList() {
					for _, ordering := range []bool{false, true} {
						db := dbOff
						if ordering {
							db = dbOn
						}
						r, matches, err := runLeg(db, engine, ordering, queryVals, k, band, procs)
						if err != nil {
							log.Fatalf("benchknn: engine=%s ordering=%v k=%d band=%d: %v", engine, ordering, k, band, err)
						}
						if err := compareMatches(oracle, matches); err != nil {
							log.Fatalf("benchknn: engine=%s k=%d band=%d: ordering=%v diverged from ordering-off oracle: %v",
								engine, k, band, ordering, err)
						}
						rep.Rows = append(rep.Rows, r)
						if procs == 1 {
							dtwAt[legKey{engine, k, band, ordering}] = r.DTWCalls
						}
						log.Printf("engine=%s ordering=%-5v k=%-3d band=%d procs=%d: %.1f q/s, %d DTW calls, %d pushes, %d repushes, %d env cutoffs",
							engine, ordering, k, band, procs, r.QPS, r.DTWCalls, r.FrontierPushes, r.Repushes, r.EnvCutoffs)
					}
				}
			}
		}
		dbOn.Close()
		dbOff.Close()
	}

	// Fence: ordering must cut exact DTW calls by >= 30% at k=10 band=8.
	for _, engine := range []string{twsim.EngineGuttman, twsim.EngineFlat} {
		for _, k := range ks {
			for _, band := range []int{0, 8} {
				on, okOn := dtwAt[legKey{engine, k, band, true}]
				off, okOff := dtwAt[legKey{engine, k, band, false}]
				if !okOn || !okOff || off == 0 {
					continue
				}
				f := fenceRow{
					Engine: engine, K: k, Band: band,
					DTWOn: on, DTWOff: off,
					DTWReduction: 1 - float64(on)/float64(off),
				}
				rep.Fences = append(rep.Fences, f)
				if !*smoke && k == 10 && band == 8 && f.DTWReduction < 0.30 {
					log.Fatalf("benchknn: engine=%s k=10 band=8: DTW-call reduction %.1f%% below the 30%% fence (%d -> %d)",
						engine, 100*f.DTWReduction, off, on)
				}
				if k == 10 && band == 8 {
					log.Printf("fence: engine=%s k=10 band=8: DTW calls %d -> %d (%.1f%% reduction)",
						engine, off, on, 100*f.DTWReduction)
				}
			}
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("benchknn: writing %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}
}

func procsList() []int {
	n := runtime.NumCPU()
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

func openDB(engine string, disableOrdering bool, values [][]float64) *twsim.DB {
	db, err := twsim.OpenMem(twsim.Options{IndexEngine: engine, DisableEnvOrdering: disableOrdering})
	if err != nil {
		log.Fatalf("benchknn: open engine=%s: %v", engine, err)
	}
	if _, err := db.AddAll(values); err != nil {
		log.Fatalf("benchknn: load engine=%s: %v", engine, err)
	}
	return db
}

func runMatches(db *twsim.DB, queries [][]float64, k, band int) [][]twsim.Match {
	out := make([][]twsim.Match, len(queries))
	for i, q := range queries {
		ms, _, err := db.NearestKStatsBandWorkers(q, k, band, nil, 1)
		if err != nil {
			log.Fatalf("benchknn: oracle k=%d band=%d: %v", k, band, err)
		}
		out[i] = ms
	}
	return out
}

func runLeg(db *twsim.DB, engine string, ordering bool, queries [][]float64, k, band, procs int) (row, [][]twsim.Match, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	// Warm pass fills pools and caches; the timed pass is the steady state.
	for _, q := range queries {
		if _, _, err := db.NearestKStatsBandWorkers(q, k, band, nil, 1); err != nil {
			return row{}, nil, err
		}
	}
	matches := make([][]twsim.Match, len(queries))
	stats := make([]twsim.QueryStats, len(queries))
	start := time.Now()
	for i, q := range queries {
		ms, st, err := db.NearestKStatsBandWorkers(q, k, band, nil, 1)
		if err != nil {
			return row{}, nil, err
		}
		matches[i], stats[i] = ms, st
	}
	wall := time.Since(start)

	r := row{
		Engine:   engine,
		Ordering: ordering,
		K:        k,
		Band:     band,
		Procs:    procs,
		NumCPU:   hostinfo.NumCPU(),
		CPUModel: hostinfo.CPUModel(),
		QPS:      float64(len(queries)) / wall.Seconds(),
		WallMS:   float64(wall.Microseconds()) / 1e3,
	}
	for i, st := range stats {
		pruned := st.LBKimPruned + st.LBPAAPruned + st.LBKeoghPruned +
			st.LBYiPruned + st.LBImprovedPruned + st.CorridorPruned
		if st.Candidates != pruned+st.DTWCalls {
			return row{}, nil, fmt.Errorf("query %d: conservation law broken: candidates=%d pruned=%d dtw=%d",
				i, st.Candidates, pruned, st.DTWCalls)
		}
		r.Candidates += st.Candidates
		r.DTWCalls += st.DTWCalls
		r.FrontierPushes += st.KNNFrontierPushes
		r.Repushes += st.KNNRepushes
		r.EnvCutoffs += st.KNNEnvCutoffs
		r.Matches += len(matches[i])
	}
	return r, matches, nil
}

func compareMatches(want, got [][]twsim.Match) error {
	for qi := range want {
		if len(want[qi]) != len(got[qi]) {
			return fmt.Errorf("query %d: %d matches, want %d", qi, len(got[qi]), len(want[qi]))
		}
		for i := range want[qi] {
			if want[qi][i] != got[qi][i] {
				return fmt.Errorf("query %d match %d: %+v, want %+v", qi, i, got[qi][i], want[qi][i])
			}
		}
	}
	return nil
}
