// Command benchwal measures the write path with and without the
// group-commit write-ahead log, writing the results as JSON.
//
// Usage:
//
//	go run ./cmd/benchwal                    # full run, writes BENCH_wal.json
//	go run ./cmd/benchwal -smoke             # small CI smoke run (no file)
//	go run ./cmd/benchwal -ops 2000 -len 128
//
// Two legs:
//
//   - Writes: p50/p99 acknowledge latency, throughput, and fsyncs-per-op
//     for 1/4/16 concurrent writers, WAL on vs off, at GOMAXPROCS 1 and
//     full width. Writers serialize the apply with one mutex and wait for
//     the covering fsync outside it (the AddCommit/Commit split), so
//     concurrent writers share flushes. Full mode fails unless 16 writers
//     amortize to under one fsync per acknowledged write, and unless the
//     16-writer p99 stays bounded by the flush interval plus a generous
//     fsync allowance (group commit must cap the wait, not stack it).
//
//   - Crash check (also in smoke): acknowledged writes are issued against
//     a WAL-enabled database, the directory is copied mid-flight — a
//     simulated kill -9, nothing flushed — and the copy is reopened. The
//     leg fails if a single acknowledged write is missing.
//
// Every row carries gomaxprocs, num_cpu, and cpu_model so a result file
// is interpretable without knowing which machine produced it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	twsim "repro"
	"repro/internal/hostinfo"
	"repro/internal/synth"
)

const flushInterval = 2 * time.Millisecond

type writeRow struct {
	WAL         bool    `json:"wal"`
	Writers     int     `json:"writers"`
	Procs       int     `json:"gomaxprocs"`
	NumCPU      int     `json:"num_cpu"`
	CPUModel    string  `json:"cpu_model"`
	Ops         int     `json:"ops"`
	P50us       float64 `json:"ack_p50_us"`
	P99us       float64 `json:"ack_p99_us"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	Fsyncs      int64   `json:"fsyncs"`
	FsyncsPerOp float64 `json:"fsyncs_per_op"`
}

type crashRow struct {
	Acked     int  `json:"acked_writes"`
	Recovered int  `json:"recovered"`
	LostAcked int  `json:"lost_acked"`
	Replayed  bool `json:"wal_replayed"`
}

type report struct {
	GOMAXPROCS  int        `json:"gomaxprocs"`
	NumCPU      int        `json:"num_cpu"`
	CPUModel    string     `json:"cpu_model"`
	SeqLen      int        `json:"seq_len"`
	FlushMs     float64    `json:"wal_flush_ms"`
	Smoke       bool       `json:"smoke"`
	Writes      []writeRow `json:"writes"`
	Crash       crashRow   `json:"crash_check"`
	BaselineP50 float64    `json:"single_fsync_p50_us"`
}

func percentile(d []time.Duration, p float64) float64 {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)-1))
	return float64(s[i].Nanoseconds()) / 1e3 // microseconds
}

func main() {
	var (
		out    = flag.String("out", "BENCH_wal.json", "result file (empty = stdout only)")
		smoke  = flag.Bool("smoke", false, "small fast run for CI; implies -out \"\" and skips the latency/fsync fences")
		ops    = flag.Int("ops", 4000, "acknowledged writes per writer-count leg")
		seqLen = flag.Int("len", 64, "sequence length")
	)
	flag.Parse()
	if *smoke {
		*out = ""
		*ops = 200
	}

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     hostinfo.NumCPU(),
		CPUModel:   hostinfo.CPUModel(),
		SeqLen:     *seqLen,
		FlushMs:    float64(flushInterval) / 1e6,
		Smoke:      *smoke,
	}

	rng := rand.New(rand.NewSource(42))
	data := synth.RandomWalkSet(rng, *ops, *seqLen)
	values := make([][]float64, len(data))
	for i, s := range data {
		values[i] = s
	}

	// Baseline: single-writer immediate-fsync appends — one fsync per op by
	// construction — so the p99 fence below has a machine-calibrated notion
	// of "one fsync".
	rep.BaselineP50 = baselineFsyncP50(values)
	log.Printf("single-fsync baseline p50 %.0fus", rep.BaselineP50)

	for _, procs := range procsList() {
		for _, walOn := range []bool{false, true} {
			for _, writers := range writerCounts(*smoke) {
				r := runWriteLeg(values, walOn, writers, procs)
				rep.Writes = append(rep.Writes, r)
				log.Printf("wal=%-5v writers=%-2d procs=%-2d: p50 %.0fus p99 %.0fus, %.0f ops/s, %.3f fsyncs/op",
					r.WAL, r.Writers, r.Procs, r.P50us, r.P99us, r.OpsPerSec, r.FsyncsPerOp)
				if !*smoke && walOn && writers >= 16 {
					if r.FsyncsPerOp >= 1 {
						log.Fatalf("benchwal: %.3f fsyncs/op at %d writers — group commit is not batching", r.FsyncsPerOp, writers)
					}
					// p99 must be bounded by the flush linger plus a
					// generous multiple of one fsync (absorbs scheduler
					// noise without letting fsyncs stack serially).
					budget := float64(flushInterval)/1e3 + 20*math.Max(rep.BaselineP50, 100)
					if r.P99us > budget {
						log.Fatalf("benchwal: 16-writer p99 %.0fus exceeds flush-interval+fsync budget %.0fus", r.P99us, budget)
					}
				}
			}
		}
	}

	rep.Crash = runCrashCheck(values)
	log.Printf("crash check: %d acked, %d recovered, %d lost", rep.Crash.Acked, rep.Crash.Recovered, rep.Crash.LostAcked)
	if rep.Crash.LostAcked != 0 {
		log.Fatalf("benchwal: crash check lost %d acknowledged writes", rep.Crash.LostAcked)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("benchwal: writing %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}
}

func procsList() []int {
	n := runtime.NumCPU()
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

func writerCounts(smoke bool) []int {
	if smoke {
		return []int{1, 16}
	}
	return []int{1, 4, 16}
}

func tempDB(opts twsim.Options) (*twsim.DB, string, func()) {
	dir, err := os.MkdirTemp("", "benchwal-*")
	if err != nil {
		log.Fatal(err)
	}
	db, err := twsim.Create(filepath.Join(dir, "db"), opts)
	if err != nil {
		log.Fatalf("benchwal: create: %v", err)
	}
	return db, filepath.Join(dir, "db"), func() {
		db.Close()
		os.RemoveAll(dir)
	}
}

// baselineFsyncP50 times single-writer appends in immediate-flush mode:
// every acknowledge is exactly one fsync.
func baselineFsyncP50(values [][]float64) float64 {
	db, _, cleanup := tempDB(twsim.Options{WAL: true, WALFlushInterval: -1})
	defer cleanup()
	n := len(values)
	if n > 200 {
		n = 200
	}
	lat := make([]time.Duration, 0, n)
	for _, v := range values[:n] {
		start := time.Now()
		if _, err := db.Add(v); err != nil {
			log.Fatalf("benchwal: baseline add: %v", err)
		}
		lat = append(lat, time.Since(start))
	}
	return percentile(lat, 0.50)
}

// runWriteLeg drives ops acknowledged writes through `writers` goroutines
// sharing one apply mutex, committing outside it — the serving layer's
// exact write shape.
func runWriteLeg(values [][]float64, walOn bool, writers, procs int) writeRow {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)

	opts := twsim.Options{}
	if walOn {
		opts = twsim.Options{WAL: true, WALFlushInterval: flushInterval}
	}
	db, _, cleanup := tempDB(opts)
	defer cleanup()

	var (
		mu   sync.Mutex // the external writer serialization the library requires
		next int
		wg   sync.WaitGroup
		lmu  sync.Mutex
		lats = make([]time.Duration, 0, len(values))
	)
	startFsyncs := db.WALStats().Fsyncs
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if next >= len(values) {
					mu.Unlock()
					return
				}
				v := values[next]
				next++
				opStart := time.Now()
				_, commit, err := db.AddCommit(v)
				mu.Unlock()
				if err != nil {
					log.Fatalf("benchwal: add: %v", err)
				}
				if err := commit(); err != nil {
					log.Fatalf("benchwal: commit: %v", err)
				}
				d := time.Since(opStart)
				lmu.Lock()
				lats = append(lats, d)
				lmu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := db.WALStats()

	row := writeRow{
		WAL:       walOn,
		Writers:   writers,
		Procs:     procs,
		NumCPU:    hostinfo.NumCPU(),
		CPUModel:  hostinfo.CPUModel(),
		Ops:       len(values),
		P50us:     percentile(lats, 0.50),
		P99us:     percentile(lats, 0.99),
		OpsPerSec: float64(len(values)) / elapsed.Seconds(),
		Fsyncs:    st.Fsyncs - startFsyncs,
	}
	if row.Ops > 0 {
		row.FsyncsPerOp = float64(row.Fsyncs) / float64(row.Ops)
	}
	return row
}

// runCrashCheck acknowledges writes, copies the directory with no flush or
// close — the crash image — and reopens it, counting survivors.
func runCrashCheck(values [][]float64) crashRow {
	n := len(values)
	if n > 500 {
		n = 500
	}
	db, dir, cleanup := tempDB(twsim.Options{WAL: true, WALFlushInterval: flushInterval})
	defer cleanup()
	for _, v := range values[:n] {
		if _, err := db.Add(v); err != nil {
			log.Fatalf("benchwal: crash-leg add: %v", err)
		}
	}

	crash, err := os.MkdirTemp("", "benchwal-crash-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(crash)
	image := filepath.Join(crash, "db")
	if err := copyTree(dir, image); err != nil {
		log.Fatalf("benchwal: copying crash image: %v", err)
	}

	re, err := twsim.Open(image, twsim.Options{WAL: true})
	if err != nil {
		log.Fatalf("benchwal: reopening crash image: %v", err)
	}
	defer re.Close()

	row := crashRow{Acked: n, Recovered: re.Len()}
	row.LostAcked = row.Acked - row.Recovered
	for _, note := range re.OpenDiagnostics() {
		if len(note) >= 4 && note[:4] == "wal:" {
			row.Replayed = true
		}
	}
	return row
}

func copyTree(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
}
