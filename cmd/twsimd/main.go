// Command twsimd serves a twsim sequence database over HTTP (see
// internal/server for the API).
//
// Usage:
//
//	twsimd -db /var/lib/twsim -addr :7474            # open existing database
//	twsimd -db /var/lib/twsim -create -addr :7474    # create a fresh one
//	twsimd -mem -addr :7474                          # ephemeral in-memory db
//	twsimd -db /var/lib/twsim -create -shards 8      # create hash-partitioned
//	twsimd -mem -shards 4                            # in-memory, 4 shards
//
// -shards N creates a sharded database: N independent partitions searched
// in parallel, with writers serialized per shard instead of globally. The
// shard count is fixed at creation and recorded in the database directory;
// when opening an existing database the flag may be omitted (the layout is
// auto-detected) but must match if given. A rule of thumb for choosing N:
// the number of cores you want one query's DTW verification to use (see
// the README's sharding section).
//
// -refine-workers B is the total intra-query refinement budget per search
// (candidate fetch + cascade + exact DTW run on up to B goroutines; on a
// sharded database the budget is split across the shards a search fans out
// to). 0, the default, means GOMAXPROCS; 1 forces the serial path. Results
// are bit-identical at every setting.
//
// -index-engine E picks the feature index engine: "guttman" (the default
// R-tree) or "flat" (immutable packed snapshot + mutable delta overlay with
// background merges; see README). When opening an existing database the
// flag may be omitted — the engine is auto-detected from the index file on
// disk — but must match if given. The flat engine's snapshot generation,
// delta size, and merge latency are exported on GET /metrics
// (twsim_index_snapshot_generation, twsim_index_delta_entries,
// twsim_index_merges_total, twsim_index_merge_seconds) and under
// "index_engine" in GET /stats.
//
// -band R sets the default Sakoe–Chiba band half-width every query answers
// under (0, the default, is the paper's unconstrained distance). Individual
// /search and /knn requests may override it with a "band" field; negative
// values are rejected with 400.
//
// -seq-cache-mb M sizes the decoded-sequence cache in MiB per partition
// (default 4, 0 disables): repeat queries serve hot sequences from memory
// without page I/O or deserialization. The cache+pool hit ratios are
// reported under "storage" in GET /stats and as gauges on GET /metrics.
//
// Serving under load:
//
//   - -result-cache-mb M enables the whole-query result cache (default 0 =
//     off): a repeated /search or /knn answers from memory with zero
//     index/heap/DTW work. Any write invalidates affected entries via the
//     database's write generation, so a hit is always bit-identical to
//     recomputing. Counters: twsim_result_cache_* on /metrics,
//     "result_cache" on /stats; hits carry "cache_hit": true.
//   - -deadline-ms T bounds each query's execution (0 = none); a query past
//     the deadline is abandoned at its next candidate boundary and answers
//     503. A client that disconnects mid-query likewise has its query
//     abandoned (logged as 499).
//   - -max-inflight N caps the queries executing at once (0 = unlimited);
//     up to -queue-depth more wait for a slot, and anything beyond that is
//     shed immediately with 429 + Retry-After (seconds set by
//     -retry-after-s). Outcome counters:
//     twsim_queries_{shed,cancelled,deadline_exceeded}_total.
//
// Durability and replication:
//
//   - -wal runs a group-commit write-ahead log: a write is acknowledged
//     only after the fsync covering its log record, so acknowledged writes
//     survive a crash (the log is replayed on the next open). Concurrent
//     writers share fsyncs — -wal-flush-ms bounds how long a write waits
//     for its batch (default 2ms) — and -wal-checkpoint-mb bounds replay
//     length by checkpointing when the log outgrows the limit. Counters:
//     twsim_wal_* on /metrics, "wal" on /stats. Sharded databases run one
//     log per shard.
//   - -replica-of URL runs this process as a read-only replica of the
//     single-database WAL-enabled primary at URL: it bootstraps from
//     GET /repl/snapshot, then streams the WAL tail (GET /repl/wal) every
//     -replica-poll-ms and applies it locally, answering queries
//     bit-identically to the primary at the same sequence number. Writes
//     answer 403. Lag is exported as twsim_replica_lag_seconds /
//     twsim_replica_generation_delta on /metrics and "replica" on /stats.
//     The replica keeps no disk state; every start re-syncs.
//
// Observability:
//
//   - GET /metrics serves the Prometheus text exposition (per-endpoint
//     request counters and latency histograms, query/cascade counters,
//     pool and cache counters).
//   - -slow-query-ms T logs every query whose wall time reaches T
//     milliseconds as one flat key=value line carrying the request_id the
//     response also returns (0, the default, disables the log).
//   - -pprof-addr starts net/http/pprof on a separate listener (empty, the
//     default, keeps profiling off). The profiling listener shares nothing
//     with the API listener, so it can be bound to localhost only.
//
// The API http.Server runs with read/write/idle timeouts and a header
// budget (flag-overridable via -read-timeout, -write-timeout,
// -idle-timeout, -max-header-bytes) so slow or stalled clients cannot pin
// connections indefinitely.
//
// Shut down with SIGINT/SIGTERM; the database is flushed on exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	twsim "repro"
	"repro/internal/server"
)

func main() {
	var (
		dbDir   = flag.String("db", "", "database directory")
		addr    = flag.String("addr", ":7474", "listen address")
		create  = flag.Bool("create", false, "create the database if it does not exist")
		mem     = flag.Bool("mem", false, "serve an ephemeral in-memory database")
		shards  = flag.Int("shards", 0, "shard count for -create/-mem (0 = unsharded); on open, must match the existing layout")
		verify  = flag.Bool("verify", false, "run a full heap/index integrity check before serving")
		workers = flag.Int("refine-workers", 0, "intra-query refinement worker budget per search (0 = GOMAXPROCS, 1 = serial)")
		engine  = flag.String("index-engine", "", "feature index engine: guttman (R-tree) or flat (packed snapshot + delta overlay); empty auto-detects on open and defaults to guttman on create")
		band    = flag.Int("band", 0, "default Sakoe-Chiba band half-width queries answer under (0 = unconstrained; requests may override per query)")
		cacheMB = flag.Int("seq-cache-mb", 4, "decoded-sequence cache size in MiB per partition (0 = disabled)")

		resultCacheMB = flag.Int("result-cache-mb", 0, "whole-query result cache size in MiB (0 = disabled); repeated queries answer from memory with zero index/DTW work, invalidated by any write")
		deadlineMS    = flag.Int("deadline-ms", 0, "per-query execution deadline in milliseconds (0 = none); a query past it is abandoned and answers 503")
		maxInflight   = flag.Int("max-inflight", 0, "max concurrently executing queries (0 = unlimited); excess queries queue then shed with 429")
		queueDepth    = flag.Int("queue-depth", 64, "queries allowed to wait for an execution slot when -max-inflight is set; arrivals beyond it shed immediately")
		retryAfterS   = flag.Int("retry-after-s", 0, "Retry-After seconds advertised on shed (429) responses (0 = 1s)")

		walOn           = flag.Bool("wal", false, "run a group-commit write-ahead log: acknowledged writes survive a crash (on-disk databases; per shard when sharded)")
		walFlushMS      = flag.Int("wal-flush-ms", 2, "WAL group-commit flush interval in milliseconds (writes wait at most this plus one fsync; 0 = fsync every batch immediately)")
		walCheckpointMB = flag.Int("wal-checkpoint-mb", 64, "checkpoint (full flush + log truncation) when the WAL file reaches this many MiB (0 = never on size)")

		replicaOf     = flag.String("replica-of", "", "run as a read-only replica of the primary twsimd at this base URL (e.g. http://primary:7474): bootstrap from its snapshot, stream its WAL tail, answer queries locally and writes with 403")
		replicaPollMS = flag.Int("replica-poll-ms", 500, "replica WAL tail polling interval in milliseconds")

		slowMS    = flag.Int("slow-query-ms", 0, "log queries at or above this wall time in milliseconds (0 = disabled)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")

		readTimeout    = flag.Duration("read-timeout", 30*time.Second, "http.Server ReadTimeout (whole request, headers+body)")
		writeTimeout   = flag.Duration("write-timeout", 60*time.Second, "http.Server WriteTimeout (response deadline)")
		idleTimeout    = flag.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout (keep-alive connections)")
		maxHeaderBytes = flag.Int("max-header-bytes", 1<<20, "http.Server MaxHeaderBytes")
	)
	flag.Parse()

	if *band < 0 {
		fmt.Fprintf(os.Stderr, "twsimd: negative band half-width %d\n", *band)
		os.Exit(2)
	}
	opts := twsim.Options{
		RefineWorkers:      *workers,
		Band:               *band,
		IndexEngine:        *engine,
		SeqCacheBytes:      int64(*cacheMB) << 20,
		ResultCacheBytes:   int64(*resultCacheMB) << 20,
		QueryDeadline:      time.Duration(*deadlineMS) * time.Millisecond,
		SlowQueryThreshold: time.Duration(*slowMS) * time.Millisecond,
		WAL:                *walOn,
	}
	if *walOn {
		if *mem || *replicaOf != "" {
			fmt.Fprintln(os.Stderr, "twsimd: -wal requires an on-disk database (not -mem / -replica-of)")
			os.Exit(2)
		}
		opts.WALFlushInterval = time.Duration(*walFlushMS) * time.Millisecond
		if *walFlushMS == 0 {
			opts.WALFlushInterval = -1 // fsync every batch immediately
		}
		opts.WALCheckpointBytes = int64(*walCheckpointMB) << 20
		if *walCheckpointMB == 0 {
			opts.WALCheckpointBytes = -1
		}
	}
	if *replicaOf != "" && (*shards > 0 || *create) {
		fmt.Fprintln(os.Stderr, "twsimd: -replica-of serves an in-memory single-database replica (no -shards/-create)")
		os.Exit(2)
	}
	var db twsim.Backend
	var single *twsim.DB // non-nil when serving an unsharded database
	var err error
	sharded := twsim.ShardedOptions{Options: opts, Shards: *shards}
	switch {
	case *replicaOf != "":
		// A replica is an in-memory mirror rebuilt from the primary's
		// snapshot + WAL stream on every start; it persists nothing.
		single, err = twsim.OpenMem(opts)
	case *mem && *shards > 0:
		db, err = twsim.OpenMemSharded(sharded)
	case *mem:
		single, err = twsim.OpenMem(opts)
	case *dbDir == "":
		fmt.Fprintln(os.Stderr, "twsimd: provide -db <dir> or -mem")
		os.Exit(2)
	case *create && *shards > 0:
		db, err = twsim.CreateSharded(*dbDir, sharded)
	case *create:
		single, err = twsim.Create(*dbDir, opts)
	case *shards > 0 || twsim.IsSharded(*dbDir):
		db, err = twsim.OpenSharded(*dbDir, sharded)
	default:
		single, err = twsim.Open(*dbDir, opts)
	}
	if single != nil {
		db = single
	}
	if err != nil {
		log.Fatalf("twsimd: opening database: %v", err)
	}
	if rs := db.LastRepair(); rs.Repaired() {
		log.Printf("twsimd: database recovered on open: %s", rs.String())
	}
	// One line per open-time note: snapshot rebuild-on-open, heap/index
	// reconciliation, envelope-sidecar rebuilds.
	for _, note := range db.OpenDiagnostics() {
		log.Printf("twsimd: open: %s", note)
	}
	if *verify {
		if err := db.Verify(); err != nil {
			log.Fatalf("twsimd: integrity check failed: %v", err)
		}
		log.Printf("twsimd: integrity check passed (%d sequences)", db.Len())
	}

	srv := server.NewBackendLimits(db, server.Limits{
		MaxInflight:       *maxInflight,
		QueueDepth:        *queueDepth,
		RetryAfterSeconds: *retryAfterS,
	})
	var replica *server.Replica
	if *replicaOf != "" {
		replica, err = server.NewReplica(srv, *replicaOf, server.ReplicaOptions{
			PollInterval: time.Duration(*replicaPollMS) * time.Millisecond,
		})
		if err != nil {
			log.Fatalf("twsimd: %v", err)
		}
		replica.Start()
		lag := replica.Lag()
		log.Printf("twsimd: replica of %s bootstrapped at seq %d (%d sequences), read-only", *replicaOf, lag.AppliedSeq, db.Len())
	}
	httpSrv := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		MaxHeaderBytes:    *maxHeaderBytes,
	}

	// Listen before serving so the actual bound address can be logged —
	// with -addr 127.0.0.1:0 (tests, the CI smoke) the kernel picks the
	// port and the "listening on" line is how callers learn it.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("twsimd: listen %s: %v", *addr, err)
	}

	// pprof lives on its own listener and mux: profiling endpoints never
	// share a port (or an exposure decision) with the API, and the default
	// off means zero new surface unless explicitly requested.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("twsimd: pprof listen %s: %v", *pprofAddr, err)
		}
		log.Printf("twsimd: pprof listening on %s", pln.Addr())
		go func() {
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("twsimd: pprof server: %v", err)
			}
		}()
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-done
		log.Println("twsimd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if pprofSrv != nil {
			if err := pprofSrv.Shutdown(ctx); err != nil {
				log.Printf("twsimd: pprof shutdown: %v", err)
			}
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("twsimd: shutdown: %v", err)
		}
	}()

	if sdb, ok := db.(*twsim.ShardedDB); ok {
		log.Printf("twsimd: serving %d sequences across %d shards, listening on %s", db.Len(), sdb.NumShards(), ln.Addr())
	} else {
		log.Printf("twsimd: serving %d sequences, listening on %s", db.Len(), ln.Addr())
	}
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("twsimd: %v", err)
	}
	if replica != nil {
		replica.Stop()
	}
	if err := srv.Close(); err != nil {
		log.Printf("twsimd: closing server state: %v", err)
	}
	if err := db.Close(); err != nil {
		log.Fatalf("twsimd: closing database: %v", err)
	}
	log.Println("twsimd: database closed cleanly")
}
