// Command twsimd serves a twsim sequence database over HTTP (see
// internal/server for the API).
//
// Usage:
//
//	twsimd -db /var/lib/twsim -addr :7474            # open existing database
//	twsimd -db /var/lib/twsim -create -addr :7474    # create a fresh one
//	twsimd -mem -addr :7474                          # ephemeral in-memory db
//	twsimd -db /var/lib/twsim -create -shards 8      # create hash-partitioned
//	twsimd -mem -shards 4                            # in-memory, 4 shards
//
// -shards N creates a sharded database: N independent partitions searched
// in parallel, with writers serialized per shard instead of globally. The
// shard count is fixed at creation and recorded in the database directory;
// when opening an existing database the flag may be omitted (the layout is
// auto-detected) but must match if given. A rule of thumb for choosing N:
// the number of cores you want one query's DTW verification to use (see
// the README's sharding section).
//
// -refine-workers B is the total intra-query refinement budget per search
// (candidate fetch + cascade + exact DTW run on up to B goroutines; on a
// sharded database the budget is split across the shards a search fans out
// to). 0, the default, means GOMAXPROCS; 1 forces the serial path. Results
// are bit-identical at every setting.
//
// -seq-cache-mb M sizes the decoded-sequence cache in MiB per partition
// (default 4, 0 disables): repeat queries serve hot sequences from memory
// without page I/O or deserialization. The cache+pool hit ratios are
// reported under "storage" in GET /stats.
//
// Shut down with SIGINT/SIGTERM; the database is flushed on exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	twsim "repro"
	"repro/internal/server"
)

func main() {
	var (
		dbDir   = flag.String("db", "", "database directory")
		addr    = flag.String("addr", ":7474", "listen address")
		create  = flag.Bool("create", false, "create the database if it does not exist")
		mem     = flag.Bool("mem", false, "serve an ephemeral in-memory database")
		shards  = flag.Int("shards", 0, "shard count for -create/-mem (0 = unsharded); on open, must match the existing layout")
		verify  = flag.Bool("verify", false, "run a full heap/index integrity check before serving")
		workers = flag.Int("refine-workers", 0, "intra-query refinement worker budget per search (0 = GOMAXPROCS, 1 = serial)")
		cacheMB = flag.Int("seq-cache-mb", 4, "decoded-sequence cache size in MiB per partition (0 = disabled)")
	)
	flag.Parse()

	opts := twsim.Options{RefineWorkers: *workers, SeqCacheBytes: int64(*cacheMB) << 20}
	var db twsim.Backend
	var single *twsim.DB // non-nil when serving an unsharded database
	var err error
	sharded := twsim.ShardedOptions{Options: opts, Shards: *shards}
	switch {
	case *mem && *shards > 0:
		db, err = twsim.OpenMemSharded(sharded)
	case *mem:
		single, err = twsim.OpenMem(opts)
	case *dbDir == "":
		fmt.Fprintln(os.Stderr, "twsimd: provide -db <dir> or -mem")
		os.Exit(2)
	case *create && *shards > 0:
		db, err = twsim.CreateSharded(*dbDir, sharded)
	case *create:
		single, err = twsim.Create(*dbDir, opts)
	case *shards > 0 || twsim.IsSharded(*dbDir):
		db, err = twsim.OpenSharded(*dbDir, sharded)
	default:
		single, err = twsim.Open(*dbDir, opts)
	}
	if single != nil {
		db = single
	}
	if err != nil {
		log.Fatalf("twsimd: opening database: %v", err)
	}
	if rs := db.LastRepair(); rs.Repaired() {
		log.Printf("twsimd: database recovered on open: %s", rs.String())
	}
	if *verify {
		if err := db.Verify(); err != nil {
			log.Fatalf("twsimd: integrity check failed: %v", err)
		}
		log.Printf("twsimd: integrity check passed (%d sequences)", db.Len())
	}

	srv := server.NewBackend(db)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-done
		log.Println("twsimd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("twsimd: shutdown: %v", err)
		}
	}()

	if sdb, ok := db.(*twsim.ShardedDB); ok {
		log.Printf("twsimd: serving %d sequences across %d shards on %s", db.Len(), sdb.NumShards(), *addr)
	} else {
		log.Printf("twsimd: serving %d sequences on %s", db.Len(), *addr)
	}
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("twsimd: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("twsimd: closing server state: %v", err)
	}
	if err := db.Close(); err != nil {
		log.Fatalf("twsimd: closing database: %v", err)
	}
	log.Println("twsimd: database closed cleanly")
}
