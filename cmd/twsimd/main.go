// Command twsimd serves a twsim sequence database over HTTP (see
// internal/server for the API).
//
// Usage:
//
//	twsimd -db /var/lib/twsim -addr :7474          # open existing database
//	twsimd -db /var/lib/twsim -create -addr :7474  # create a fresh one
//	twsimd -mem -addr :7474                        # ephemeral in-memory db
//
// Shut down with SIGINT/SIGTERM; the database is flushed on exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	twsim "repro"
	"repro/internal/server"
)

func main() {
	var (
		dbDir  = flag.String("db", "", "database directory")
		addr   = flag.String("addr", ":7474", "listen address")
		create = flag.Bool("create", false, "create the database if it does not exist")
		mem    = flag.Bool("mem", false, "serve an ephemeral in-memory database")
		verify = flag.Bool("verify", false, "run a full heap/index integrity check before serving")
	)
	flag.Parse()

	var db *twsim.DB
	var err error
	switch {
	case *mem:
		db, err = twsim.OpenMem(twsim.Options{})
	case *dbDir == "":
		fmt.Fprintln(os.Stderr, "twsimd: provide -db <dir> or -mem")
		os.Exit(2)
	case *create:
		db, err = twsim.Create(*dbDir, twsim.Options{})
	default:
		db, err = twsim.Open(*dbDir, twsim.Options{})
	}
	if err != nil {
		log.Fatalf("twsimd: opening database: %v", err)
	}
	if rs := db.LastRepair(); rs.Repaired() {
		log.Printf("twsimd: database recovered on open: %s", rs.String())
	}
	if *verify {
		if err := db.Verify(); err != nil {
			log.Fatalf("twsimd: integrity check failed: %v", err)
		}
		log.Printf("twsimd: integrity check passed (%d sequences)", db.Len())
	}

	srv := server.New(db)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	done := make(chan os.Signal, 1)
	signal.Notify(done, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-done
		log.Println("twsimd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("twsimd: shutdown: %v", err)
		}
	}()

	log.Printf("twsimd: serving %d sequences on %s", db.Len(), *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("twsimd: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("twsimd: closing server state: %v", err)
	}
	if err := db.Close(); err != nil {
		log.Fatalf("twsimd: closing database: %v", err)
	}
	log.Println("twsimd: database closed cleanly")
}
