// Command benchflat compares the two feature-index engines — the Guttman
// R-tree and the flat packed-snapshot engine — on the same fixed-seed
// random-walk workload, writing the results as JSON.
//
// Usage:
//
//	go run ./cmd/benchflat                      # full run, writes BENCH_flat.json
//	go run ./cmd/benchflat -smoke               # small CI smoke run (no file)
//	go run ./cmd/benchflat -seqs 8000 -len 256
//
// Two measurements:
//
//   - Walk: the raw filter-phase range walk (feature rect in, candidate
//     entries out) timed at the index layer over the full query set, both
//     engines over identical entries. The flat engine walks one contiguous
//     slab with implicit child offsets — no page pool, no locks, no
//     pointer chasing — so this is where its advantage is purest. The
//     steady-state flat walk is also AllocsPerRun-tested: reusing the
//     caller's buffer it must allocate nothing, and the harness fails if
//     it does.
//
//   - QPS: end-to-end query throughput at the library layer (Search over a
//     fresh database per engine), once at GOMAXPROCS=1 and once at the
//     machine's full width. Both engines must return bit-identical matches
//     query for query, and each row is checked against the conservation
//     law (candidates = Σ per-tier pruned + dtw_calls) before it is
//     recorded.
//
// Every row carries gomaxprocs, num_cpu, and cpu_model so a result file is
// interpretable without knowing which machine produced it. In full mode
// the harness fails if the flat walk is not at least 1.3x faster than the
// Guttman walk at the default 4000x128 workload — that is the regression
// fence the engine exists to hold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	twsim "repro"
	"repro/internal/core"
	"repro/internal/flatidx"
	"repro/internal/hostinfo"
	"repro/internal/seq"
	"repro/internal/synth"
)

type walkReport struct {
	Procs           int     `json:"gomaxprocs"`
	NumCPU          int     `json:"num_cpu"`
	CPUModel        string  `json:"cpu_model"`
	Walks           int     `json:"walks"`
	GuttmanNsPerOp  float64 `json:"guttman_ns_per_walk"`
	FlatNsPerOp     float64 `json:"flat_ns_per_walk"`
	Speedup         float64 `json:"flat_speedup_vs_guttman"`
	FlatWalkAllocs  float64 `json:"flat_walk_allocs_per_op"`
	MeanCandidates  float64 `json:"mean_candidates_per_walk"`
	SnapshotEntries int     `json:"snapshot_entries"`
}

type qpsRow struct {
	Engine     string  `json:"engine"`
	Procs      int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	CPUModel   string  `json:"cpu_model"`
	QPS        float64 `json:"queries_per_sec"`
	WallMS     float64 `json:"wall_ms"`
	Candidates int     `json:"candidates"`
	DTWCalls   int     `json:"dtw_calls"`
	Matches    int     `json:"matches"`
}

type report struct {
	GOMAXPROCS int        `json:"gomaxprocs"`
	NumCPU     int        `json:"num_cpu"`
	CPUModel   string     `json:"cpu_model"`
	Sequences  int        `json:"sequences"`
	SeqLen     int        `json:"seq_len"`
	Queries    int        `json:"queries"`
	Epsilon    float64    `json:"epsilon"`
	Smoke      bool       `json:"smoke"`
	Walk       walkReport `json:"walk"`
	QPS        []qpsRow   `json:"qps"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_flat.json", "result file (empty = stdout only)")
		smoke   = flag.Bool("smoke", false, "small fast run for CI; implies -out \"\" and relaxes the speedup fence")
		seqs    = flag.Int("seqs", 4000, "number of random-walk sequences")
		seqLen  = flag.Int("len", 128, "sequence length")
		queries = flag.Int("queries", 64, "queries per pass")
		eps     = flag.Float64("eps", 0.35, "search tolerance (paper's epsilon)")
		rounds  = flag.Int("rounds", 200, "walk-timing repetitions over the query set")
	)
	flag.Parse()
	if *smoke {
		*out = ""
		*seqs, *seqLen, *queries, *rounds = 300, 64, 8, 20
	}

	rng := rand.New(rand.NewSource(42))
	data := synth.RandomWalkSet(rng, *seqs, *seqLen)
	values := make([][]float64, len(data))
	for i, s := range data {
		values[i] = s
	}
	qs := synth.Queries(rng, data, *queries)
	queryVals := make([][]float64, len(qs))
	for i, q := range qs {
		queryVals[i] = q
	}

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     hostinfo.NumCPU(),
		CPUModel:   hostinfo.CPUModel(),
		Sequences:  *seqs,
		SeqLen:     *seqLen,
		Queries:    *queries,
		Epsilon:    *eps,
		Smoke:      *smoke,
	}
	rep.Walk = runWalk(data, qs, *eps, *rounds)
	log.Printf("walk: guttman %.0f ns/op, flat %.0f ns/op (%.2fx), %.1f candidates/walk, flat allocs/op %.1f",
		rep.Walk.GuttmanNsPerOp, rep.Walk.FlatNsPerOp, rep.Walk.Speedup,
		rep.Walk.MeanCandidates, rep.Walk.FlatWalkAllocs)
	if rep.Walk.FlatWalkAllocs != 0 {
		log.Fatalf("benchflat: steady-state flat walk allocated %.1f times per op, want 0", rep.Walk.FlatWalkAllocs)
	}
	if !*smoke && rep.Walk.Speedup < 1.3 {
		log.Fatalf("benchflat: flat walk speedup %.2fx below the 1.3x fence", rep.Walk.Speedup)
	}

	// End-to-end throughput, both engines, serial and full-width; the
	// engines must agree match for match at every width.
	var oracle [][]twsim.Match
	for _, procs := range procsList() {
		for _, engine := range []string{twsim.EngineGuttman, twsim.EngineFlat} {
			row, matches, err := runQPS(engine, procs, values, queryVals, *eps)
			if err != nil {
				log.Fatalf("benchflat: engine=%s procs=%d: %v", engine, procs, err)
			}
			if oracle == nil {
				oracle = matches
			} else if err := compareMatches(oracle, matches); err != nil {
				log.Fatalf("benchflat: engine=%s procs=%d diverged from guttman baseline: %v", engine, procs, err)
			}
			rep.QPS = append(rep.QPS, row)
			log.Printf("qps: engine=%s procs=%d: %.1f queries/sec (%d candidates, %d DTW calls, %d matches)",
				engine, procs, row.QPS, row.Candidates, row.DTWCalls, row.Matches)
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("benchflat: writing %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}
}

func procsList() []int {
	n := runtime.NumCPU()
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

// runWalk times the pure filter-phase range walk on both engines over
// identical entries, and alloc-tests the flat engine's steady state.
func runWalk(data, qs []seq.Sequence, eps float64, rounds int) walkReport {
	ids := make([]seq.ID, len(data))
	features := make([]seq.Feature, len(data))
	for i, s := range data {
		f, err := seq.ExtractFeature(s)
		if err != nil {
			log.Fatalf("benchflat: extracting feature %d: %v", i, err)
		}
		ids[i] = seq.ID(i)
		features[i] = f
	}
	qf := make([]seq.Feature, len(qs))
	for i, q := range qs {
		f, err := seq.ExtractFeature(q)
		if err != nil {
			log.Fatalf("benchflat: extracting query feature %d: %v", i, err)
		}
		qf[i] = f
	}

	guttman, err := core.NewIndex(core.IndexOptions{Engine: core.EngineGuttman})
	if err != nil {
		log.Fatal(err)
	}
	defer guttman.Close()
	if err := guttman.BulkLoad(ids, features); err != nil {
		log.Fatal(err)
	}
	flat, err := core.NewIndex(core.IndexOptions{Engine: core.EngineFlat})
	if err != nil {
		log.Fatal(err)
	}
	defer flat.Close()
	if err := flat.BulkLoad(ids, features); err != nil {
		log.Fatal(err)
	}

	// Same closed rect, same candidate sets: verify once, then time.
	totalCands := 0
	for i, f := range qf {
		ge, err := guttman.RangeQueryEntries(f, eps)
		if err != nil {
			log.Fatal(err)
		}
		fe, err := flat.RangeQueryEntries(f, eps)
		if err != nil {
			log.Fatal(err)
		}
		if len(ge) != len(fe) {
			log.Fatalf("benchflat: query %d: guttman walk %d entries, flat %d", i, len(ge), len(fe))
		}
		totalCands += len(ge)
	}

	time1 := func(x core.Index) float64 {
		start := time.Now()
		for r := 0; r < rounds; r++ {
			for _, f := range qf {
				if _, err := x.RangeQueryEntries(f, eps); err != nil {
					log.Fatal(err)
				}
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(rounds*len(qf))
	}
	w := walkReport{
		Procs:           1, // the timing loop is single-goroutine by construction
		NumCPU:          hostinfo.NumCPU(),
		CPUModel:        hostinfo.CPUModel(),
		Walks:           rounds * len(qf),
		MeanCandidates:  float64(totalCands) / float64(len(qf)),
		SnapshotEntries: len(data),
	}
	w.GuttmanNsPerOp = time1(guttman)
	w.FlatNsPerOp = time1(flat)
	if w.FlatNsPerOp > 0 {
		w.Speedup = w.GuttmanNsPerOp / w.FlatNsPerOp
	}

	// Steady-state allocation test at the slab layer: with the caller
	// reusing its buffer, an immutable-snapshot walk must not allocate.
	entries := make([]flatidx.Entry, len(ids))
	for i := range ids {
		entries[i] = flatidx.Entry{ID: ids[i], Point: features[i].Vector()}
	}
	fidx := flatidx.New(flatidx.Options{MergeThreshold: -1})
	defer fidx.Close()
	if err := fidx.BulkLoad(entries, nil); err != nil {
		log.Fatal(err)
	}
	buf := make([]flatidx.Entry, 0, len(entries))
	w.FlatWalkAllocs = testing.AllocsPerRun(100, func() {
		for _, f := range qf {
			v := f.Vector()
			var lo, hi [4]float64
			for d := 0; d < 4; d++ {
				lo[d], hi[d] = v[d]-eps, v[d]+eps
			}
			buf = fidx.AppendRange(buf[:0], &lo, &hi)
		}
	})
	return w
}

func runQPS(engine string, procs int, data, queries [][]float64, eps float64) (qpsRow, [][]twsim.Match, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	db, err := twsim.OpenMem(twsim.Options{IndexEngine: engine})
	if err != nil {
		return qpsRow{}, nil, err
	}
	defer db.Close()
	if _, err := db.AddAll(data); err != nil {
		return qpsRow{}, nil, err
	}

	// Warm pass fills pools and caches; the timed pass is the steady state.
	for _, q := range queries {
		if _, err := db.Search(q, eps); err != nil {
			return qpsRow{}, nil, err
		}
	}
	results := make([]*twsim.Result, len(queries))
	start := time.Now()
	for i, q := range queries {
		r, err := db.Search(q, eps)
		if err != nil {
			return qpsRow{}, nil, err
		}
		results[i] = r
	}
	wall := time.Since(start)

	row := qpsRow{
		Engine:   engine,
		Procs:    procs,
		NumCPU:   hostinfo.NumCPU(),
		CPUModel: hostinfo.CPUModel(),
		QPS:      float64(len(queries)) / wall.Seconds(),
		WallMS:   float64(wall.Microseconds()) / 1e3,
	}
	matches := make([][]twsim.Match, len(results))
	for i, r := range results {
		st := r.Stats
		pruned := st.LBKimPruned + st.LBPAAPruned + st.LBKeoghPruned +
			st.LBYiPruned + st.LBImprovedPruned + st.CorridorPruned
		if st.Candidates != pruned+st.DTWCalls {
			return qpsRow{}, nil, fmt.Errorf("query %d: conservation law broken: candidates=%d pruned=%d dtw=%d",
				i, st.Candidates, pruned, st.DTWCalls)
		}
		row.Candidates += st.Candidates
		row.DTWCalls += st.DTWCalls
		row.Matches += len(r.Matches)
		matches[i] = r.Matches
	}
	return row, matches, nil
}

func compareMatches(want, got [][]twsim.Match) error {
	for qi := range want {
		if len(want[qi]) != len(got[qi]) {
			return fmt.Errorf("query %d: %d matches, want %d", qi, len(got[qi]), len(want[qi]))
		}
		for i := range want[qi] {
			if want[qi][i] != got[qi][i] {
				return fmt.Errorf("query %d match %d: %+v, want %+v", qi, i, got[qi][i], want[qi][i])
			}
		}
	}
	return nil
}
