// Command datagen generates workload databases on disk for use with the
// twsim CLI and external tooling.
//
// Usage:
//
//	datagen -out /tmp/stockdb -kind stock                  # S&P-style set
//	datagen -out /tmp/walkdb -kind walk -count 10000 -len 200
//	datagen -out /tmp/vardb  -kind varywalk -count 5000 -minlen 50 -maxlen 500
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	twsim "repro"
	"repro/internal/synth"
)

func main() {
	var (
		out     = flag.String("out", "", "output database directory (required)")
		kind    = flag.String("kind", "walk", "workload: stock, walk, or varywalk")
		count   = flag.Int("count", 1000, "number of sequences (walk/varywalk)")
		length  = flag.Int("len", 200, "sequence length (walk)")
		minLen  = flag.Int("minlen", 100, "minimum length (varywalk)")
		maxLen  = flag.Int("maxlen", 400, "maximum length (varywalk)")
		seed    = flag.Int64("seed", 42, "random seed")
		verbose = flag.Bool("v", false, "print progress")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	var data [][]float64
	switch *kind {
	case "stock":
		for _, s := range synth.StockSet(rng, synth.DefaultStockOptions) {
			data = append(data, s)
		}
	case "walk":
		for _, s := range synth.RandomWalkSet(rng, *count, *length) {
			data = append(data, s)
		}
	case "varywalk":
		for _, s := range synth.RandomWalkSetVaryLen(rng, *count, *minLen, *maxLen) {
			data = append(data, s)
		}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	db, err := twsim.Create(*out, twsim.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if _, err := db.AddAll(data); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := db.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Printf("wrote %d sequences to %s\n", len(data), *out)
	} else {
		fmt.Printf("%d sequences -> %s\n", len(data), *out)
	}
}
