// Command experiments regenerates the paper's evaluation section.
//
// Usage:
//
//	experiments -exp 1          # Figure 2: candidate ratio vs tolerance (stock)
//	experiments -exp 2          # Figure 3: elapsed time vs tolerance (stock)
//	experiments -exp 3          # Figure 4: elapsed time vs #sequences (synthetic)
//	experiments -exp 4          # Figure 5: elapsed time vs sequence length
//	experiments -exp 5          # §3.3: FastMap false-dismissal demonstration
//	experiments -exp all        # everything
//
// Default grids are scaled to finish on a laptop in minutes; -full selects
// the paper's original grid (expect hours for the scan baselines — see
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/seq"
	"repro/internal/synth"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run: 1-5, 6 (base ablation), 7 (category ablation), or all")
		seed       = flag.Int64("seed", 42, "random seed for data and queries")
		queries    = flag.Int("queries", 100, "queries per measurement point (paper: 100)")
		full       = flag.Bool("full", false, "use the paper's full-scale grids (slow)")
		noST       = flag.Bool("nost", false, "skip the ST-Filter baseline (large builds)")
		categories = flag.Int("categories", 100, "ST-Filter category count (paper: 100)")
		base       = flag.String("base", "linf", "DTW base distance: linf or l1")
		pool       = flag.Int("pool", 64, "buffer pool pages per file")
		csvDir     = flag.String("csv", "", "also write machine-readable CSV files into this directory")
		plot       = flag.Bool("plot", false, "render ASCII charts of the elapsed-time figures")
	)
	flag.Parse()

	cfg := experiments.Config{
		Seed:         *seed,
		NumQueries:   *queries,
		Categories:   *categories,
		WithSTFilter: !*noST,
		PoolPages:    *pool,
	}
	switch strings.ToLower(*base) {
	case "linf", "":
		cfg.Base = seq.LInf
	case "l1":
		cfg.Base = seq.L1
	default:
		fmt.Fprintf(os.Stderr, "unknown base %q\n", *base)
		os.Exit(2)
	}

	run := func(n int) bool { return *exp == "all" || *exp == strconv.Itoa(n) }
	cm := core.DefaultCostModel
	writeCSV := func(name, xlabel string, cells []experiments.Cell) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			die(err)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		die(err)
		die(experiments.WriteCSV(f, xlabel, cells, cm))
		die(f.Close())
		fmt.Printf("(csv written to %s)\n", filepath.Join(*csvDir, name))
	}

	var stockCells []experiments.Cell
	if run(1) || run(2) {
		tolerances := []float64{0.25, 0.5, 1, 2, 4, 8}
		stock := synth.DefaultStockOptions
		fmt.Printf("== building stock fixture (%d sequences, avg len %d) ==\n",
			stock.Count, stock.MeanLen)
		var err error
		stockCells, err = experiments.StockSweep(cfg, stock, tolerances)
		die(err)
	}
	if run(1) {
		fmt.Println("\n== Experiment 1 (Figure 2): candidate ratio vs tolerance, stock data ==")
		experiments.PrintCandidateRatioTable(os.Stdout, stockCells)
		writeCSV("exp1_candidate_ratio.csv", "tolerance", stockCells)
	}
	if run(2) {
		fmt.Println("\n== Experiment 2 (Figure 3): elapsed time vs tolerance, stock data ==")
		experiments.PrintElapsedTable(os.Stdout, "tolerance", stockCells, cm)
		if *plot {
			experiments.Plot(os.Stdout, "tolerance", stockCells, cm)
		}
		writeCSV("exp2_elapsed_vs_tolerance.csv", "tolerance", stockCells)
	}
	if run(3) {
		counts := []int{500, 2000, 8000}
		length := 100
		if *full {
			counts = []int{1000, 10000, 100000}
			length = 1000
		}
		fmt.Printf("\n== Experiment 3 (Figure 4): elapsed time vs #sequences "+
			"(len %d, eps 0.1) ==\n", length)
		cells, err := experiments.ScaleSweep(cfg, counts, length, 0.1)
		die(err)
		experiments.PrintElapsedTable(os.Stdout, "#sequences", cells, cm)
		if *plot {
			experiments.Plot(os.Stdout, "#sequences", cells, cm)
		}
		writeCSV("exp3_elapsed_vs_count.csv", "num_sequences", cells)
	}
	if run(4) {
		lengths := []int{50, 100, 200, 400}
		count := 1000
		if *full {
			lengths = []int{100, 500, 1000, 5000}
			count = 10000
		}
		fmt.Printf("\n== Experiment 4 (Figure 5): elapsed time vs sequence length "+
			"(%d sequences, eps 0.1) ==\n", count)
		cells, err := experiments.LengthSweep(cfg, lengths, count, 0.1)
		die(err)
		experiments.PrintElapsedTable(os.Stdout, "length", cells, cm)
		if *plot {
			experiments.Plot(os.Stdout, "length", cells, cm)
		}
		writeCSV("exp4_elapsed_vs_length.csv", "length", cells)
	}
	if run(6) {
		fmt.Println("\n== Ablation A (§4.1 / footnote 3): L∞ vs L1 base distance ==")
		rows, err := experiments.BaseAblation(cfg, 1.0, 40.0)
		die(err)
		experiments.PrintBaseAblation(os.Stdout, rows, cm)
	}
	if run(7) {
		fmt.Println("\n== Ablation B (§3.4): ST-Filter category granularity (eps 0.1) ==")
		rows, err := experiments.CategoryAblation(cfg, []int{10, 50, 100, 500}, 0.1)
		die(err)
		experiments.PrintCategoryAblation(os.Stdout, rows, cm)
	}
	if run(5) {
		fmt.Println("\n== Experiment 5 (§3.3): FastMap false dismissal ==")
		for _, eps := range []float64{0.5, 1, 2} {
			rep, err := experiments.FalseDismissal(cfg, 4, eps)
			die(err)
			fmt.Printf("eps %4.1f: %4d true answers over %d queries, FastMap found %4d "+
				"(dismissed %d, %.1f%%)\n",
				eps, rep.TrueAnswers, rep.Queries, rep.FastMapAnswers, rep.Dismissed,
				100*float64(rep.Dismissed)/float64(max(rep.TrueAnswers, 1)))
		}
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
