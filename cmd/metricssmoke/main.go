// Command metricssmoke is the CI smoke test for the observability surface:
// it boots a real twsimd process on an ephemeral port, drives a little
// traffic through /sequences, /search, and /knn, scrapes GET /metrics, and
// verifies that the output is valid Prometheus text exposition containing
// the key series — per-endpoint request counters and latency histograms,
// the DTW/cascade counters, and the conservation law
// candidates = lb_kim + lb_keogh + lb_yi + corridor + dtw_calls.
//
// Usage: metricssmoke -bin ./bin/twsimd (the Makefile's metrics-smoke
// target builds the binary first). Exits non-zero with a diagnostic on any
// failure.
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
)

func main() {
	bin := flag.String("bin", "./bin/twsimd", "path to the twsimd binary")
	flag.Parse()
	if err := run(*bin); err != nil {
		fmt.Fprintf(os.Stderr, "metricssmoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("metricssmoke: OK")
}

var listenRE = regexp.MustCompile(`listening on (\S+)`)

func run(bin string) error {
	cmd := exec.Command(bin, "-mem", "-shards", "2", "-addr", "127.0.0.1:0", "-slow-query-ms", "1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", bin, err)
	}
	defer func() {
		_ = cmd.Process.Signal(syscall.SIGTERM)
		_ = cmd.Wait()
	}()

	// The daemon logs "listening on <addr>" once the socket is bound; with
	// -addr 127.0.0.1:0 that line is the only way to learn the port.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if m := listenRE.FindStringSubmatch(line); m != nil && !strings.Contains(line, "pprof") {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(15 * time.Second):
		return fmt.Errorf("twsimd did not report a listen address within 15s")
	}

	// Seed data and traffic: a batch insert, a range search, a k-NN.
	post := func(path, body string) error {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return fmt.Errorf("POST %s: %w", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode >= 300 {
			return fmt.Errorf("POST %s: %s: %s", path, resp.Status, bytes.TrimSpace(b))
		}
		return nil
	}
	if err := post("/sequences/batch", `{"sequences": [[1,2,3,4],[1,2,3,5],[10,11,12,13],[2,2,2,2],[5,6,7,8]]}`); err != nil {
		return err
	}
	if err := post("/search", `{"query": [1,2,3,4], "epsilon": 1.5}`); err != nil {
		return err
	}
	if err := post("/knn", `{"query": [5,6,7,8], "k": 2}`); err != nil {
		return err
	}
	// A malformed query must 400 without polluting the query counters.
	if err := post("/search", `{"query": [], "epsilon": 1}`); err == nil {
		return fmt.Errorf("empty query unexpectedly accepted")
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return fmt.Errorf("GET /metrics: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}

	samples, err := obs.ParseText(body)
	if err != nil {
		return fmt.Errorf("exposition does not parse: %w", err)
	}

	need := func(name string, labels map[string]string) (float64, error) {
		v, ok := samples.Value(name, labels)
		if !ok {
			return 0, fmt.Errorf("series %s%v missing from /metrics", name, labels)
		}
		return v, nil
	}
	searches, err := need("twsim_queries_total", nil)
	if err != nil {
		return err
	}
	if searches < 2 {
		return fmt.Errorf("twsim_queries_total = %g, want >= 2 (one /search + one /knn)", searches)
	}
	okSearch, err := need("twsim_http_requests_total", map[string]string{"endpoint": "search", "code": "2xx"})
	if err != nil {
		return err
	}
	badSearch, err := need("twsim_http_requests_total", map[string]string{"endpoint": "search", "code": "4xx"})
	if err != nil {
		return err
	}
	if okSearch < 1 || badSearch < 1 {
		return fmt.Errorf("search request counters: 2xx=%g 4xx=%g, want both >= 1", okSearch, badSearch)
	}
	histCount, err := need("twsim_http_request_duration_seconds_count", map[string]string{"endpoint": "search"})
	if err != nil {
		return err
	}
	if histCount < 2 {
		return fmt.Errorf("search latency histogram count = %g, want >= 2", histCount)
	}
	if _, err := need("twsim_http_request_duration_seconds_bucket", map[string]string{"endpoint": "knn", "le": "+Inf"}); err != nil {
		return err
	}
	// The conservation law across the exported counters.
	var law [5]float64
	for i, name := range []string{"twsim_query_candidates_total", "twsim_lb_kim_pruned_total", "twsim_lb_keogh_pruned_total", "twsim_lb_yi_pruned_total", "twsim_corridor_pruned_total"} {
		if law[i], err = need(name, nil); err != nil {
			return err
		}
	}
	dtw, err := need("twsim_dtw_calls_total", nil)
	if err != nil {
		return err
	}
	if got := law[1] + law[2] + law[3] + law[4] + dtw; got != law[0] {
		return fmt.Errorf("conservation law violated: candidates=%g but pruned+dtw=%g", law[0], got)
	}
	for _, name := range []string{"twsim_pool_reads_total", "twsim_pool_hit_ratio", "twsim_seq_cache_hit_ratio", "twsim_sequences"} {
		if _, err := need(name, nil); err != nil {
			return err
		}
	}
	return nil
}
