// Command benchrefine measures intra-query parallel refinement and the
// decoded-sequence cache on a synthetic random-walk workload (the paper's
// §5.1 generator), writing the results as JSON.
//
// Usage:
//
//	go run ./cmd/benchrefine                    # full run, writes BENCH_refine.json
//	go run ./cmd/benchrefine -smoke             # small CI smoke run (no file)
//	go run ./cmd/benchrefine -seqs 8000 -len 256 -queries 128
//
// Unlike benchshards, which measures inter-query batch throughput, this
// harness runs queries one at a time so each query's refinement step — the
// candidate fetch + lower-bound cascade + exact DTW — is the only source of
// parallelism. Every worker budget in {1, 2, 4, NumCPU} (deduplicated) gets
// a fresh database over the same fixed-seed data, and runs twice — once at
// GOMAXPROCS=1 and once at the machine's full width — with both rows
// recorded (per-row "gomaxprocs" field). Per configuration the harness runs
// three passes over the query set:
//
//  1. an untimed warm pass (fills the buffer pools and the decoded-sequence
//     cache),
//  2. a timed repeated-query pass (the steady state: hot pools, hot cache),
//  3. in -smoke mode only, a verification pass comparing every result
//     against the workers=1 baseline match-for-match.
//
// Reported per configuration: queries/sec, per-query p50/p99 latency, DTW
// call count, buffer-pool hit ratio, and the decoded-sequence cache hit
// ratio over the repeated-query pass (expected near 1.0 once the working
// set fits the cache budget). The "gomaxprocs" field records how many cores
// the run actually had — on a 1-core runner the multi-worker configurations
// show scheduling overhead, not speedup, so judge scaling only against that
// field.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	twsim "repro"
	"repro/internal/hostinfo"
	"repro/internal/synth"
)

type config struct {
	Workers      int     `json:"workers"`
	Procs        int     `json:"gomaxprocs"`
	NumCPU       int     `json:"num_cpu"`
	CPUModel     string  `json:"cpu_model"`
	QPS          float64 `json:"queries_per_sec"`
	WallMS       float64 `json:"wall_ms"`
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	DTWCalls     int     `json:"dtw_calls"`
	Candidates   int     `json:"candidates"`
	Matches      int     `json:"matches"`
	PoolHitRate  float64 `json:"pool_hit_rate"`
	CacheHitRate float64 `json:"repeat_cache_hit_rate"`
	SpeedupVs1W  float64 `json:"speedup_vs_1_worker"`
}

type report struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	Sequences  int      `json:"sequences"`
	SeqLen     int      `json:"seq_len"`
	Queries    int      `json:"queries"`
	Epsilon    float64  `json:"epsilon"`
	CacheMB    int      `json:"seq_cache_mb"`
	Smoke      bool     `json:"smoke"`
	Configs    []config `json:"configs"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_refine.json", "result file (empty = stdout only)")
		smoke   = flag.Bool("smoke", false, "small fast run for CI with result verification; implies -out \"\"")
		seqs    = flag.Int("seqs", 4000, "number of random-walk sequences")
		seqLen  = flag.Int("len", 128, "sequence length")
		queries = flag.Int("queries", 64, "queries per pass")
		eps     = flag.Float64("eps", 0.35, "search tolerance (paper's epsilon)")
		cacheMB = flag.Int("cache-mb", 8, "decoded-sequence cache budget in MiB")
	)
	flag.Parse()
	if *smoke {
		*out = ""
		*seqs, *seqLen, *queries = 300, 64, 8
	}

	rng := rand.New(rand.NewSource(42))
	data := synth.RandomWalkSet(rng, *seqs, *seqLen)
	values := make([][]float64, len(data))
	for i, s := range data {
		values[i] = s
	}
	qs := synth.Queries(rng, data, *queries)
	queryVals := make([][]float64, len(qs))
	for i, q := range qs {
		queryVals[i] = q
	}

	rep := report{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Sequences:  *seqs,
		SeqLen:     *seqLen,
		Queries:    *queries,
		Epsilon:    *eps,
		CacheMB:    *cacheMB,
		Smoke:      *smoke,
	}
	// Every worker budget runs at both GOMAXPROCS=1 and the machine's full
	// width, recording both rows: the serial rows show pure scheduling
	// overhead, the full-width rows the intra-query speedup. Speedups are
	// computed within each procs group against its own workers=1 baseline.
	var baseline []*twsim.Result // first workers=1 results, the verification oracle
	for _, procs := range procsList() {
		baseIdx := len(rep.Configs)
		for _, w := range workerCounts(rep.NumCPU) {
			c, results, err := runConfig(w, procs, values, queryVals, *eps, int64(*cacheMB)<<20)
			if err != nil {
				log.Fatalf("benchrefine: workers=%d procs=%d: %v", w, procs, err)
			}
			if *smoke {
				if baseline == nil {
					baseline = results
				} else if err := compareResults(baseline, results); err != nil {
					log.Fatalf("benchrefine: workers=%d procs=%d not bit-identical to workers=1: %v", w, procs, err)
				}
			}
			if len(rep.Configs) > baseIdx {
				c.SpeedupVs1W = c.QPS / rep.Configs[baseIdx].QPS
			} else {
				c.SpeedupVs1W = 1
			}
			rep.Configs = append(rep.Configs, c)
			log.Printf("workers=%d procs=%d: %.1f queries/sec (p50 %.2f ms, p99 %.2f ms, %d DTW calls, pool hit %.1f%%, repeat cache hit %.1f%%)",
				c.Workers, procs, c.QPS, c.P50MS, c.P99MS, c.DTWCalls, 100*c.PoolHitRate, 100*c.CacheHitRate)
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			log.Fatalf("benchrefine: writing %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}
}

// workerCounts returns {1, 2, 4, NumCPU} deduplicated and sorted, so the
// serial baseline always runs first.
func workerCounts(maxprocs int) []int {
	set := map[int]bool{1: true, 2: true, 4: true, maxprocs: true}
	var out []int
	for n := range set {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// procsList returns the GOMAXPROCS settings every configuration runs at:
// 1 and the machine's full width (deduplicated on single-core runners).
func procsList() []int {
	n := runtime.NumCPU()
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

func runConfig(workers, procs int, data, queries [][]float64, eps float64, cacheBytes int64) (config, []*twsim.Result, error) {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	db, err := twsim.OpenMem(twsim.Options{RefineWorkers: workers, SeqCacheBytes: cacheBytes})
	if err != nil {
		return config{}, nil, err
	}
	defer db.Close()
	if _, err := db.AddAll(data); err != nil {
		return config{}, nil, err
	}

	// Warm pass: fills the buffer pools and the decoded-sequence cache so
	// the timed pass below measures the repeated-query steady state.
	for _, q := range queries {
		if _, err := db.Search(q, eps); err != nil {
			return config{}, nil, err
		}
	}

	before := db.StorageStats()
	results := make([]*twsim.Result, len(queries))
	start := time.Now()
	for i, q := range queries {
		r, err := db.Search(q, eps)
		if err != nil {
			return config{}, nil, err
		}
		results[i] = r
	}
	wall := time.Since(start)
	after := db.StorageStats()

	lat := make([]time.Duration, len(results))
	c := config{Workers: workers, Procs: procs, NumCPU: hostinfo.NumCPU(), CPUModel: hostinfo.CPUModel()}
	for i, r := range results {
		lat[i] = r.Stats.Wall
		c.DTWCalls += r.Stats.DTWCalls
		c.Candidates += r.Stats.Candidates
		c.Matches += len(r.Matches)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	c.WallMS = float64(wall.Microseconds()) / 1e3
	c.QPS = float64(len(queries)) / wall.Seconds()
	c.P50MS = float64(lat[len(lat)/2].Microseconds()) / 1e3
	c.P99MS = float64(lat[len(lat)*99/100].Microseconds()) / 1e3

	// Hit ratios over the timed pass only (counter deltas), so the cold
	// load and warm pass don't dilute the steady-state numbers.
	reads := (after.Data.Reads + after.Index.Reads) - (before.Data.Reads + before.Index.Reads)
	misses := (after.Data.Misses + after.Index.Misses) - (before.Data.Misses + before.Index.Misses)
	if reads > 0 {
		c.PoolHitRate = 1 - float64(misses)/float64(reads)
	}
	hits := after.Cache.Hits - before.Cache.Hits
	cmisses := after.Cache.Misses - before.Cache.Misses
	if hits+cmisses > 0 {
		c.CacheHitRate = float64(hits) / float64(hits+cmisses)
	}
	return c, results, nil
}

// compareResults demands match-for-match equality: parallel refinement must
// be bit-identical to the serial path at every worker budget.
func compareResults(want, got []*twsim.Result) error {
	for qi := range want {
		if len(want[qi].Matches) != len(got[qi].Matches) {
			return fmt.Errorf("query %d: %d matches, want %d", qi, len(got[qi].Matches), len(want[qi].Matches))
		}
		for i := range want[qi].Matches {
			if want[qi].Matches[i] != got[qi].Matches[i] {
				return fmt.Errorf("query %d match %d: %+v, want %+v", qi, i, got[qi].Matches[i], want[qi].Matches[i])
			}
		}
	}
	return nil
}
